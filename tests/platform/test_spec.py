"""Tests for WorkerSpec / PlatformSpec and the Table-1 constructor."""

import math

import pytest

from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform


class TestWorkerSpec:
    def test_compute_time_eq1(self):
        w = WorkerSpec(S=2.0, B=10.0, cLat=0.5)
        assert w.compute_time(4.0) == 0.5 + 4.0 / 2.0

    def test_comm_time_eq2(self):
        w = WorkerSpec(S=1.0, B=4.0, nLat=0.25, tLat=0.1)
        assert w.comm_time(8.0) == 0.25 + 2.0 + 0.1

    def test_link_time_excludes_tlat(self):
        w = WorkerSpec(S=1.0, B=4.0, nLat=0.25, tLat=0.1)
        assert w.link_time(8.0) == 0.25 + 2.0

    def test_infinite_bandwidth_models_prestaged_data(self):
        w = WorkerSpec(S=1.0, B=math.inf, nLat=0.2)
        assert w.link_time(1e9) == 0.2

    @pytest.mark.parametrize("field,value", [("S", 0.0), ("S", -1.0), ("B", 0.0)])
    def test_nonpositive_rates_rejected(self, field, value):
        kwargs = {"S": 1.0, "B": 1.0}
        kwargs[field] = value
        with pytest.raises(ValueError):
            WorkerSpec(**kwargs)

    @pytest.mark.parametrize("field", ["cLat", "nLat", "tLat"])
    def test_negative_latency_rejected(self, field):
        with pytest.raises(ValueError):
            WorkerSpec(S=1.0, B=1.0, **{field: -0.1})

    def test_specs_are_hashable_and_comparable(self):
        a = WorkerSpec(S=1.0, B=2.0)
        b = WorkerSpec(S=1.0, B=2.0)
        assert a == b
        assert hash(a) == hash(b)


class TestPlatformSpec:
    def test_requires_at_least_one_worker(self):
        with pytest.raises(ValueError):
            PlatformSpec([])

    def test_len_iteration_indexing(self):
        workers = [WorkerSpec(S=1.0, B=2.0), WorkerSpec(S=2.0, B=3.0)]
        p = PlatformSpec(workers)
        assert len(p) == 2 and p.N == 2
        assert list(p) == workers
        assert p[1].S == 2.0

    def test_homogeneity_detection(self):
        assert homogeneous_platform(3, S=1.0, B=5.0).is_homogeneous
        p = PlatformSpec([WorkerSpec(S=1.0, B=5.0), WorkerSpec(S=2.0, B=5.0)])
        assert not p.is_homogeneous

    def test_subset_preserves_order(self):
        p = PlatformSpec([WorkerSpec(S=float(i + 1), B=10.0) for i in range(4)])
        sub = p.subset([2, 0])
        assert [w.S for w in sub] == [3.0, 1.0]

    def test_total_compute_rate(self):
        p = PlatformSpec([WorkerSpec(S=1.0, B=9.0), WorkerSpec(S=2.5, B=9.0)])
        assert p.total_compute_rate() == 3.5

    def test_utilization_sum(self):
        p = PlatformSpec([WorkerSpec(S=1.0, B=4.0), WorkerSpec(S=2.0, B=8.0)])
        assert p.utilization_sum() == pytest.approx(0.25 + 0.25)

    def test_utilization_sum_infinite_bandwidth_is_free(self):
        p = PlatformSpec([WorkerSpec(S=1.0, B=math.inf)])
        assert p.utilization_sum() == 0.0

    def test_platform_is_hashable(self):
        p1 = homogeneous_platform(3, S=1.0, B=6.0)
        p2 = homogeneous_platform(3, S=1.0, B=6.0)
        assert p1 == p2 and hash(p1) == hash(p2)


class TestHomogeneousConstructor:
    def test_bandwidth_factor_table1(self):
        # Table 1: B = factor * N * S.
        p = homogeneous_platform(20, S=1.0, bandwidth_factor=1.8)
        assert p[0].B == pytest.approx(36.0)

    def test_explicit_b(self):
        p = homogeneous_platform(4, S=2.0, B=10.0)
        assert p[0].B == 10.0

    def test_both_b_and_factor_rejected(self):
        with pytest.raises(ValueError):
            homogeneous_platform(4, S=1.0, B=10.0, bandwidth_factor=1.5)

    def test_neither_b_nor_factor_rejected(self):
        with pytest.raises(ValueError):
            homogeneous_platform(4, S=1.0)

    def test_bad_n_rejected(self):
        with pytest.raises(ValueError):
            homogeneous_platform(0, S=1.0, B=1.0)

    def test_factor_above_one_satisfies_full_utilization(self):
        p = homogeneous_platform(50, S=1.0, bandwidth_factor=1.2)
        assert p.utilization_sum() == pytest.approx(1 / 1.2)
