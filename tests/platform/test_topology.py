"""Unit tests for the topology abstraction: grammar, bind, effective view."""

import math

import pytest

from repro.platform import (
    ChainTopology,
    PlatformSpec,
    SharedBandwidthTopology,
    StarTopology,
    TopologyError,
    TreeTopology,
    WorkerSpec,
    homogeneous_platform,
    make_topology,
)

pytestmark = pytest.mark.topology


class TestGrammar:
    @pytest.mark.parametrize("spec,expected", [
        ("star", StarTopology()),
        ("", StarTopology()),
        ("star:n=20", StarTopology(n=20)),
        ("chain:n=8,relay=sf", ChainTopology(n=8, relay="sf")),
        ("chain:relay=ct", ChainTopology(relay="ct")),
        ("chain:n=4", ChainTopology(n=4, relay="sf")),
        ("tree:fanout=4", TreeTopology(fanout=4)),
        ("tree:fanout=3,n=9", TreeTopology(fanout=3, n=9)),
        ("sharedbw:cap=30", SharedBandwidthTopology(cap=30.0)),
        ("sharedbw:cap=2.5,n=5", SharedBandwidthTopology(cap=2.5, n=5)),
    ])
    def test_parses(self, spec, expected):
        assert make_topology(spec) == expected

    def test_none_is_star(self):
        assert make_topology(None) == StarTopology()

    def test_instance_passthrough(self):
        t = ChainTopology(relay="ct")
        assert make_topology(t) is t

    def test_whitespace_and_case_tolerated(self):
        assert make_topology(" Chain : n = 4 , relay = sf ") == ChainTopology(n=4)

    @pytest.mark.parametrize("bad,match", [
        ("ring:n=4", "unknown topology kind"),
        ("chain:hops=3", "unknown chain parameter"),
        ("chain:relay=warp", "relay must be"),
        ("chain:n=zero", "not an integer"),
        ("tree", "requires fanout"),
        ("tree:fanout=0", "fanout must be >= 1"),
        ("sharedbw", "requires cap"),
        ("sharedbw:cap=-1", "cap must be finite"),
        ("sharedbw:cap=inf", "cap must be finite"),
        ("chain:n=4,n=5", "duplicate parameter"),
        ("chain:relay", "malformed parameter"),
    ])
    def test_rejects(self, bad, match):
        with pytest.raises(TopologyError, match=match):
            make_topology(bad)

    def test_non_string_non_topology_rejected(self):
        with pytest.raises(TopologyError, match="spec string"):
            make_topology(42)


class TestBindStar:
    def test_paths_mirror_worker_links(self):
        p = homogeneous_platform(3, bandwidth_factor=2.0, nLat=0.1)
        bound = StarTopology().bind(p)
        assert bound.kind == "star"
        assert bound.num_relay_links == 0
        assert all(not path.hops and not path.has_tail for path in bound.paths)
        assert [path.occ_B for path in bound.paths] == [w.B for w in p.workers]

    def test_effective_platform_is_same_object(self):
        p = homogeneous_platform(3, bandwidth_factor=1.5)
        assert StarTopology().effective_platform(p) is p

    def test_n_mismatch_raises(self):
        with pytest.raises(TopologyError, match="N=3"):
            StarTopology(n=5).bind(homogeneous_platform(3, bandwidth_factor=1.5))


class TestBindChain:
    def _hetero(self):
        return PlatformSpec([
            WorkerSpec(S=1.0, B=10.0, nLat=0.1),
            WorkerSpec(S=1.0, B=20.0, nLat=0.2),
            WorkerSpec(S=1.0, B=40.0, nLat=0.4),
        ])

    def test_sf_hops_use_predecessor_links(self):
        bound = ChainTopology(relay="sf").bind(self._hetero())
        assert bound.num_relay_links == 2
        assert bound.paths[0].hops == ()
        assert [h.resource for h in bound.paths[2].hops] == [0, 1]
        assert [h.B for h in bound.paths[2].hops] == [20.0, 40.0]
        # Hop occupancy matches what the star would charge on that link.
        assert bound.paths[2].hops[0].hop_time(10.0) == 0.2 + 10.0 / 20.0

    def test_ct_has_tail_not_hops(self):
        bound = ChainTopology(relay="ct").bind(self._hetero())
        assert bound.num_relay_links == 0
        assert bound.paths[0].hops == () and not bound.paths[0].has_tail
        deep = bound.paths[2]
        assert deep.hops == () and deep.has_tail
        assert deep.tail_lat == pytest.approx(0.6)
        # Bottleneck is B=10 (the first link): the pipe adds nothing per
        # unit beyond what the first link already charged.
        assert math.isinf(deep.tail_B)

    def test_sf_effective_bandwidth_is_harmonic(self):
        eff = ChainTopology(relay="sf").effective_platform(self._hetero())
        assert eff[0] is self._hetero()[0] or eff[0].B == 10.0
        assert eff[2].B == pytest.approx(1.0 / (1 / 10 + 1 / 20 + 1 / 40))
        assert eff[2].tLat == pytest.approx(0.2 + 0.4)
        assert eff[2].nLat == 0.1  # the master pays the first link's nLat

    def test_ct_effective_bandwidth_is_bottleneck(self):
        eff = ChainTopology(relay="ct").effective_platform(self._hetero())
        assert eff[2].B == 10.0

    def test_first_worker_keeps_original_object(self):
        p = self._hetero()
        for relay in ("sf", "ct"):
            assert ChainTopology(relay=relay).effective_platform(p)[0] is p[0]


class TestBindTree:
    def test_grouping_is_contiguous_balanced(self):
        t = TreeTopology(fanout=2)
        assert t.groups(5) == ((0, 1, 2), (3, 4))
        assert t.groups(4) == ((0, 1), (2, 3))
        assert TreeTopology(fanout=3).groups(7) == ((0, 1, 2), (3, 4), (5, 6))

    def test_fanout_exceeding_n_degenerates(self):
        p = homogeneous_platform(3, bandwidth_factor=1.5)
        t = TreeTopology(fanout=8)
        assert t.groups(3) == ((0,), (1,), (2,))
        bound = t.bind(p)
        assert all(path.hops == () for path in bound.paths)
        assert all(t.effective_platform(p)[i] is p[i] for i in range(3))

    def test_children_route_through_root(self):
        p = homogeneous_platform(5, bandwidth_factor=2.0, nLat=0.1)
        bound = TreeTopology(fanout=2).bind(p)
        assert bound.num_relay_links == 2
        assert bound.paths[0].hops == () and bound.paths[3].hops == ()
        assert [h.resource for h in bound.paths[1].hops] == [0]
        assert [h.resource for h in bound.paths[4].hops] == [1]

    def test_roots_keep_original_objects(self):
        p = homogeneous_platform(5, bandwidth_factor=1.5)
        eff = TreeTopology(fanout=2).effective_platform(p)
        assert eff[0] is p[0] and eff[3] is p[3]
        assert eff[1] is not p[1]


class TestBindSharedBw:
    def test_cap_recorded(self):
        p = homogeneous_platform(4, bandwidth_factor=2.0)
        bound = SharedBandwidthTopology(cap=3.0).bind(p)
        assert bound.cap == 3.0
        assert bound.num_relay_links == 0

    def test_effective_view_is_equal_share(self):
        p = homogeneous_platform(4, bandwidth_factor=2.0)  # B = 8 each
        eff = SharedBandwidthTopology(cap=4.0).effective_platform(p)
        assert all(w.B == 1.0 for w in eff.workers)  # cap/N = 1 < 8
        wide = SharedBandwidthTopology(cap=100.0).effective_platform(p)
        assert all(w.B == 8.0 for w in wide.workers)  # own link binds


class TestLinkPathTraverse:
    def test_serializes_on_shared_resource(self):
        from repro.platform import LinkPath, RelayHop

        path = LinkPath(0.0, 10.0, hops=(RelayHop(resource=0, nLat=0.5, B=10.0),))
        busy = [0.0]
        first = path.traverse(10.0, send_end=1.0, relay_busy=busy)
        assert first == 1.0 + 0.5 + 1.0
        # Second chunk released earlier still queues behind the first.
        second = path.traverse(10.0, send_end=2.0, relay_busy=busy)
        assert second == first + 0.5 + 1.0

    def test_hop_ends_collects_link_events(self):
        from repro.platform import LinkPath, RelayHop

        path = LinkPath(
            0.0, 10.0,
            hops=(RelayHop(0, 0.1, 10.0), RelayHop(1, 0.1, 10.0)),
        )
        ends: list = []
        end = path.traverse(5.0, send_end=0.0, relay_busy=[0.0, 0.0], hop_ends=ends)
        assert [r for r, _ in ends] == [0, 1]
        assert ends[-1][1] == end
