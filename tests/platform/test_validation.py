"""Tests for the full-utilization condition and platform validation."""

import pytest

from repro.platform import (
    PlatformSpec,
    WorkerSpec,
    full_utilization_fraction,
    homogeneous_platform,
    satisfies_full_utilization,
    validate_platform,
)
from repro.platform.validation import PlatformError


def test_table1_platforms_satisfy_condition():
    for n in (10, 25, 50):
        for factor in (1.2, 1.5, 2.0):
            p = homogeneous_platform(n, S=1.0, bandwidth_factor=factor)
            assert satisfies_full_utilization(p)


def test_slow_link_violates_condition():
    # B = 0.5 * N * S: the master cannot keep everyone busy.
    p = homogeneous_platform(10, S=1.0, B=5.0)
    assert not satisfies_full_utilization(p)


def test_boundary_is_excluded():
    # Exactly B = N*S gives sum == 1, which is not strictly feasible.
    # (N a power of two so S/B is exact in binary floating point.)
    p = homogeneous_platform(8, S=1.0, B=8.0)
    assert full_utilization_fraction(p) == 1.0
    assert not satisfies_full_utilization(p)


def test_validate_platform_passes_feasible():
    p = homogeneous_platform(10, S=1.0, bandwidth_factor=1.5)
    validate_platform(p, require_full_utilization=True)


def test_validate_platform_raises_on_infeasible():
    p = homogeneous_platform(10, S=1.0, B=5.0)
    with pytest.raises(PlatformError):
        validate_platform(p, require_full_utilization=True)


def test_validate_platform_lenient_by_default():
    p = homogeneous_platform(10, S=1.0, B=5.0)
    validate_platform(p)  # no exception


def test_heterogeneous_fraction_sums_per_worker():
    p = PlatformSpec(
        [WorkerSpec(S=1.0, B=4.0), WorkerSpec(S=1.0, B=2.0), WorkerSpec(S=2.0, B=8.0)]
    )
    assert full_utilization_fraction(p) == pytest.approx(0.25 + 0.5 + 0.25)
