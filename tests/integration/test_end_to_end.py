"""Integration tests: whole-stack flows across modules.

These tests exercise the paths a user actually runs: workload model →
calibrated platform → scheduler → simulation → analysis; the experiment
pipeline grid → sweep → table/figure → rendering; and the paper's headline
claims on a miniature scale.
"""

import math

import numpy as np
import pytest

from repro import (
    RUMR,
    UMR,
    Factoring,
    NormalErrorModel,
    homogeneous_platform,
    make_scheduler,
    simulate,
    validate_schedule,
)
from repro.core import available_schedulers
from repro.errors import NoError
from repro.experiments import run_sweep, smoke_grid, table2
from repro.experiments.metrics import mean_normalized_makespan
from repro.sim.gantt import render_gantt, utilization_profile
from repro.workloads import ImageFeatureExtraction, SequenceMatching, SignalScan

W = 1000.0


class TestEverySchedulerEndToEnd:
    @pytest.mark.parametrize("name", sorted(available_schedulers()))
    def test_runs_and_validates_on_both_engines(self, name, small_platform):
        scheduler = make_scheduler(name, 0.25)
        model = NormalErrorModel(0.25)
        fast = simulate(small_platform, W, scheduler, model, seed=3, engine="fast")
        validate_schedule(fast)
        scheduler2 = make_scheduler(name, 0.25)
        des = simulate(small_platform, W, scheduler2, model, seed=3, engine="des")
        validate_schedule(des)
        assert fast.makespan == des.makespan

    @pytest.mark.parametrize("name", sorted(available_schedulers()))
    def test_zero_error_deterministic(self, name, small_platform):
        a = simulate(small_platform, W, make_scheduler(name, 0.0), NoError())
        b = simulate(small_platform, W, make_scheduler(name, 0.0), NoError())
        assert a.makespan == b.makespan


class TestWorkloadToScheduleFlow:
    @pytest.mark.parametrize(
        "workload",
        [
            ImageFeatureExtraction(width=2048, height=2048, block=128, complexity_sigma=0.7),
            SequenceMatching(num_sequences=5000, tail_index=2.5),
            SignalScan(duration_s=600.0, sample_rate=8000.0, window=4096),
        ],
        ids=lambda w: w.name,
    )
    def test_profile_schedule_execute(self, workload):
        hardware = homogeneous_platform(8, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.05)
        platform = workload.calibrated_platform(hardware)
        error = workload.estimate_error(
            chunk_units=max(1.0, workload.total_units / 64), samples=60, seed=1
        )
        assert 0.0 <= error < 1.0
        scheduler = RUMR(known_error=error)
        result = simulate(
            platform, workload.total_units, scheduler, NormalErrorModel(error), seed=2
        )
        validate_schedule(result)
        assert result.makespan > 0
        # The Gantt and profile render without error and are consistent.
        assert "Gantt" in render_gantt(result)
        profile = utilization_profile(result)
        assert all(0 <= v <= 1 + 1e-9 for v in profile)


class TestPaperHeadlines:
    """The paper's headline claims, checked on a miniature grid."""

    @pytest.fixture(scope="class")
    def sweep(self):
        grid = smoke_grid().restrict(repetitions=4)
        return run_sweep(grid)

    def test_rumr_wins_majority_overall(self, sweep):
        # Paper §5.1: "Overall RUMR outperforms competing algorithms in 79%
        # of our experiments."  On the smoke grid we require a majority.
        from repro.experiments.metrics import overall_outperform_fraction

        fractions = [
            overall_outperform_fraction(sweep, algo)
            for algo in sweep.algorithms
            if algo != "RUMR"
        ]
        assert sum(fractions) / len(fractions) > 0.5

    def test_umr_best_only_at_small_error(self, sweep):
        ratios = mean_normalized_makespan(sweep, "UMR")
        # UMR may edge RUMR at the smallest error values but not at the top.
        assert ratios[-1] > 1.0

    def test_factoring_gap_narrows_with_error(self, sweep):
        ratios = mean_normalized_makespan(sweep, "Factoring")
        assert ratios[-1] < ratios[0]

    def test_table2_umr_row_monotone_trend(self, sweep):
        table = table2(sweep)
        row = [v for v in table.row("UMR") if not math.isnan(v)]
        assert row[-1] > row[0]


class TestSeedDiscipline:
    def test_common_random_numbers_pair_algorithms(self, paper_platform):
        # Same seed, different algorithms: the comm/comp streams derive
        # from the same root so paired comparisons are meaningful.
        model = NormalErrorModel(0.3)
        a = simulate(paper_platform, W, UMR(), model, seed=77)
        b = simulate(paper_platform, W, Factoring(), model, seed=77)
        assert a.seed == b.seed == 77
        # And a different seed changes both.
        a2 = simulate(paper_platform, W, UMR(), NormalErrorModel(0.3), seed=78)
        assert a2.makespan != a.makespan

    def test_streams_independent_of_chunk_count(self):
        # Adding chunks must not shift the computation error stream: the
        # comm and comp streams are spawned independently.
        rng_pairs = []
        from repro.errors.rng import spawn_rngs

        for _ in range(2):
            comm, comp = spawn_rngs(5, 2)
            comm.random(10)  # consume different amounts from comm
            rng_pairs.append(comp.random(5).tolist())
        assert rng_pairs[0] == rng_pairs[1]


class TestNumericalRobustness:
    @pytest.mark.parametrize("w", [1e-6, 1.0, 1e9])
    def test_extreme_workload_scales(self, w, small_platform):
        result = simulate(small_platform, w, RUMR(known_error=0.3), NormalErrorModel(0.3), seed=0)
        assert np.isfinite(result.makespan)
        assert result.dispatched_work == pytest.approx(w, rel=1e-6)

    def test_large_worker_count(self):
        p = homogeneous_platform(200, S=1.0, bandwidth_factor=1.5, cLat=0.1, nLat=0.01)
        result = simulate(p, W, RUMR(known_error=0.2), NormalErrorModel(0.2), seed=0)
        validate_schedule(result)
