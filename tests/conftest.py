"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import os

import hypothesis
import pytest

from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform

# Keep hypothesis deterministic and CI-friendly.  CI caps the example
# budget via HYPOTHESIS_MAX_EXAMPLES; print_blob reports the reproduction
# blob on failure so a CI counterexample can be replayed locally with
# @reproduce_failure.
hypothesis.settings.register_profile(
    "repro",
    max_examples=int(os.environ.get("HYPOTHESIS_MAX_EXAMPLES", "60")),
    deadline=None,
    derandomize=True,
    print_blob=True,
    suppress_health_check=[hypothesis.HealthCheck.too_slow],
)
hypothesis.settings.load_profile("repro")


@pytest.fixture
def small_platform() -> PlatformSpec:
    """A 5-worker homogeneous platform with moderate latencies."""
    return homogeneous_platform(5, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1)


@pytest.fixture
def paper_platform() -> PlatformSpec:
    """A mid-grid Table-1 platform (N=20, B=1.8N, cLat=0.3, nLat=0.1)."""
    return homogeneous_platform(20, S=1.0, bandwidth_factor=1.8, cLat=0.3, nLat=0.1)


@pytest.fixture
def hetero_platform() -> PlatformSpec:
    """A small heterogeneous platform satisfying full utilization."""
    return PlatformSpec(
        [
            WorkerSpec(S=1.0, B=12.0, cLat=0.2, nLat=0.1),
            WorkerSpec(S=2.0, B=18.0, cLat=0.1, nLat=0.05),
            WorkerSpec(S=0.5, B=9.0, cLat=0.3, nLat=0.2),
            WorkerSpec(S=1.5, B=15.0, cLat=0.0, nLat=0.0),
        ]
    )
