"""Tests for the smaller report helpers."""

import io

from repro.experiments.figures import FigureResult
from repro.experiments.report import series_summary, write_text
from repro.experiments.runner import eta_progress


def make_figure():
    return FigureResult(
        title="t",
        xlabel="error",
        ylabel="ratio",
        errors=(0.0, 0.1, 0.2),
        series={"UMR": (1.0, 1.1, 1.3), "Factoring": (1.5, 1.2, 1.1)},
    )


def test_series_summary_fields():
    summary = series_summary(make_figure())
    assert summary["UMR"] == {"first": 1.0, "last": 1.3, "min": 1.0, "max": 1.3}
    assert summary["Factoring"]["max"] == 1.5


def test_figure_length_mismatch_rejected():
    import pytest

    with pytest.raises(ValueError):
        FigureResult(
            title="t", xlabel="x", ylabel="y", errors=(0.0, 0.1),
            series={"A": (1.0,)},
        )


def test_write_text(tmp_path):
    path = tmp_path / "artifact.txt"
    write_text(str(path), "hello\n")
    assert path.read_text() == "hello\n"


def test_eta_progress_writes_and_terminates_line():
    stream = io.StringIO()
    callback = eta_progress(stream)
    callback(1, 4)
    callback(4, 4)
    out = stream.getvalue()
    assert "[1/4 platforms]" in out
    assert out.endswith("\n")
