"""Chaos suite for the resilient sweep layer (repro.experiments.resilient).

Perturbs the sweep harness the way a long campaign actually breaks —
flaky engines, poisoned cells, hung and dying pool workers, SIGKILL
mid-sweep, corrupt checkpoint shards — and pins the recovery contract:

* a cell that eventually succeeds on its original engine yields a tensor
  *bitwise identical* to an unperturbed run (retries re-run the same
  seeded computation);
* a cell rerouted down the engine-fallback ladder yields exactly what
  ``batch_static=False`` would have;
* a cell failing every rung becomes NaN plus a structured ledger entry —
  no failure mode aborts a sweep;
* a killed sweep resumes from its surviving checkpoint shards and
  recomputes only the remainder.

``REPRO_CHAOS_SEED`` reseeds which cells the chaos picks on, so CI can
run the same suite over several fault patterns.
"""

import hashlib
import io
import multiprocessing
import os
import pathlib
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.config import smoke_grid
from repro.experiments.resilient import (
    CellFailure,
    CellSupervisor,
    CheckpointStore,
    FailureLedger,
    RetryPolicy,
)
from repro.experiments.runner import _cell_seeds, eta_progress, run_sweep
from repro.obs import SweepStats, Tracer

#: CI matrix knob: reseeds the deterministic choice of chaos-hit cells.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

ALGOS = ("RUMR", "UMR", "Factoring")
FAST_RETRY = RetryPolicy(backoff_base_s=0.0)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool chaos needs fork so monkeypatches reach the workers",
)


def chaos_grid():
    return smoke_grid().restrict(
        Ns=(10, 20), bandwidth_factors=(1.4, 1.8), cLats=(0.0,), nLats=(0.1,),
        errors=(0.0, 0.2), repetitions=3,
    )


def chaos_selected(seed: int, fraction: float = 0.25) -> bool:
    """Deterministically pick ~``fraction`` of cells, keyed by CHAOS_SEED."""
    digest = hashlib.blake2b(
        f"{CHAOS_SEED}:{seed}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64 < fraction


@pytest.fixture(scope="module")
def baseline():
    return run_sweep(chaos_grid(), ALGOS)


@pytest.fixture(scope="module")
def scalar_baseline():
    """The all-scalar run the loop-and-pool chaos tests perturb.

    With every in-tree algorithm covered by a global batch pass, the
    per-platform loop (and therefore the process pool and the platform
    checkpoint shards) only has work when the batch flags are off — so
    the chaos aimed at that machinery runs with both flags off and
    compares against this baseline.
    """
    return run_sweep(chaos_grid(), ALGOS, batch_static=False,
                     batch_dynamic=False)


def assert_tensors_equal(a, b):
    for algo in ALGOS:
        assert np.array_equal(a.makespans[algo], b.makespans[algo]), algo


# ---------------------------------------------------------------------------
# RetryPolicy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(cell_timeout_s=0.0)

    def test_backoff_is_deterministic_and_jittered(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_multiplier=2.0,
                             jitter_fraction=0.25)
        delays = [policy.backoff_s(a, seed=42) for a in (1, 2, 3)]
        assert delays == [policy.backoff_s(a, seed=42) for a in (1, 2, 3)]
        for attempt, delay in enumerate(delays, start=1):
            base = 0.1 * 2.0 ** (attempt - 1)
            assert base * 0.75 <= delay <= base * 1.25
        # Different cells jitter differently (decorrelated backoff).
        assert policy.backoff_s(1, seed=42) != policy.backoff_s(1, seed=43)

    def test_zero_base_disables_sleep(self):
        assert RetryPolicy(backoff_base_s=0.0).backoff_s(3, seed=7) == 0.0


# ---------------------------------------------------------------------------
# FailureLedger


def test_ledger_json_roundtrip():
    ledger = FailureLedger()
    ledger.add(CellFailure("UMR", 3, 1, "static-batch", "scalar", 6,
                           "RuntimeError", "boom"))
    ledger.add(CellFailure("RUMR", 0, 0, "dynbatch", None, 3,
                           "ValueError", "bad"))
    rebuilt = FailureLedger.from_json(ledger.to_json())
    assert rebuilt.entries == ledger.entries
    assert len(rebuilt) == 2
    assert [e.algorithm for e in rebuilt.for_platform(3)] == ["UMR"]


# ---------------------------------------------------------------------------
# CellSupervisor


class TestCellSupervisor:
    def _flaky(self, fail_times):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise RuntimeError(f"failure #{calls['n']}")
            return np.arange(3.0)

        return fn

    def test_retry_until_success(self):
        sup = CellSupervisor(policy=FAST_RETRY)
        value = sup.run_cell(
            self._flaky(2), algorithm="UMR", platform_index=0, error_index=0,
            engine="static-batch", seed=1, shape=(3,),
        )
        assert np.array_equal(value, np.arange(3.0))
        assert sup.retries == 2 and sup.engine_fallbacks == 0
        assert len(sup.ledger) == 0

    def test_fallback_ladder(self):
        stats = SweepStats()
        tracer = Tracer()
        sup = CellSupervisor(policy=FAST_RETRY, stats=stats, tracer=tracer)
        value = sup.run_cell(
            self._flaky(99), algorithm="UMR", platform_index=2, error_index=1,
            engine="static-batch", seed=1, shape=(3,),
            fallback=self._flaky(1),
        )
        assert np.array_equal(value, np.arange(3.0))
        assert sup.engine_fallbacks == 1 and stats.engine_fallbacks == 1
        assert sup.cells_quarantined == 0
        assert [e.kind for e in tracer.events()] == ["engine_fallback"]

    def test_quarantine_after_both_rungs(self):
        stats = SweepStats()
        tracer = Tracer()
        sup = CellSupervisor(policy=FAST_RETRY, stats=stats, tracer=tracer)
        value = sup.run_cell(
            self._flaky(99), algorithm="UMR", platform_index=2, error_index=1,
            engine="static-batch", seed=1, shape=(3,),
            fallback=self._flaky(99),
        )
        assert value.shape == (3,) and np.isnan(value).all()
        assert sup.cells_quarantined == 1 and stats.cells_quarantined == 1
        (entry,) = sup.ledger.entries
        assert entry.algorithm == "UMR" and entry.platform_index == 2
        assert entry.engine == "static-batch"
        assert entry.fallback_engine == "scalar"
        assert entry.attempts == 2 * FAST_RETRY.max_attempts
        assert entry.exc_type == "RuntimeError"
        assert [e.kind for e in tracer.events()] == [
            "engine_fallback", "cell_quarantined",
        ]

    def test_keyboard_interrupt_propagates(self):
        sup = CellSupervisor(policy=FAST_RETRY)

        def interrupted():
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            sup.run_cell(
                interrupted, algorithm="UMR", platform_index=0, error_index=0,
                engine="scalar", seed=0, shape=(1,),
            )

    def test_absorb_merges_pool_worker_results(self):
        stats = SweepStats()
        parent = CellSupervisor(policy=FAST_RETRY, stats=stats)
        worker = CellSupervisor(policy=FAST_RETRY)
        worker.run_cell(
            self._flaky(99), algorithm="UMR", platform_index=1, error_index=0,
            engine="static-batch", seed=0, shape=(2,),
        )
        parent.absorb(worker.ledger.entries, worker.counters())
        assert parent.cells_quarantined == 1 and stats.cells_quarantined == 1
        assert stats.retries == worker.retries
        assert len(parent.ledger) == 1

    def test_backoff_sleeps_are_injected(self):
        slept = []
        sup = CellSupervisor(
            policy=RetryPolicy(backoff_base_s=0.5, jitter_fraction=0.0),
            sleep=slept.append,
        )
        _, exc = sup.attempt(self._flaky(99), seed=0)
        assert exc is not None
        assert slept == [0.5, 1.0]  # multiplier 2.0, max_attempts 3


# ---------------------------------------------------------------------------
# CheckpointStore


class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path, "key")
        store.save("shard", block=np.arange(6.0).reshape(2, 3),
                   valid=np.array([True, False]))
        loaded = store.load("shard")
        assert np.array_equal(loaded["block"], np.arange(6.0).reshape(2, 3))
        assert np.array_equal(loaded["valid"], np.array([True, False]))

    def test_missing_returns_none(self, tmp_path):
        assert CheckpointStore(tmp_path, "key").load("nope") is None

    def test_torn_shard_is_discarded(self, tmp_path):
        store = CheckpointStore(tmp_path, "key")
        path = store.save("shard", block=np.arange(4.0))
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.load("shard") is None
        assert not path.exists()  # deleted, not re-read next resume

    def test_tampered_payload_fails_hash(self, tmp_path):
        store = CheckpointStore(tmp_path, "key")
        path = store.save("shard", block=np.arange(4.0))
        # Overwrite with a structurally valid shard whose hash is wrong.
        with open(path, "wb") as handle:
            np.savez(handle, sha256=np.zeros(32, dtype=np.uint8),
                     block=np.arange(4.0))
        assert store.load("shard") is None
        assert not path.exists()

    def test_reserved_name_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path, "key")
        with pytest.raises(ValueError):
            store.save("shard", sha256=np.arange(2.0))
        with pytest.raises(ValueError):
            store.save("shard")

    def test_keys_do_not_collide(self, tmp_path):
        a = CheckpointStore(tmp_path, "key-a")
        b = CheckpointStore(tmp_path, "key-b")
        a.save("shard", block=np.zeros(2))
        assert b.load("shard") is None

    def test_ledger_roundtrip_and_discard(self, tmp_path):
        store = CheckpointStore(tmp_path, "key")
        ledger = FailureLedger(
            [CellFailure("UMR", 0, 0, "scalar", None, 3, "RuntimeError", "x")]
        )
        store.save_ledger(ledger)
        assert store.load_ledger().entries == ledger.entries
        store.save("shard", block=np.zeros(2))
        store.discard()
        assert store.load("shard") is None
        assert len(store.load_ledger()) == 0


# ---------------------------------------------------------------------------
# Chaos sweeps: retry heals, ladder reroutes, quarantine isolates


class TestChaosSweeps:
    def test_flaky_cells_heal_bitwise(self, baseline, monkeypatch):
        """A merged static pass failing twice then succeeding leaves no
        trace in the tensor — retries re-run the same seeded pass."""
        grid = chaos_grid()
        real = runner_mod.simulate_static_cells
        calls = {"n": 0}

        def flaky(cells, mode="multiply", **kw):
            if len(cells) > 1:
                calls["n"] += 1
                if calls["n"] <= 2:
                    raise RuntimeError("chaos: transient engine failure")
            return real(cells, mode=mode, **kw)

        monkeypatch.setattr(runner_mod, "simulate_static_cells", flaky)
        stats = SweepStats()
        result = run_sweep(grid, ALGOS, retry=FAST_RETRY, stats=stats)
        assert stats.retries > 0
        assert stats.engine_fallbacks == 0 and stats.cells_quarantined == 0
        assert_tensors_equal(baseline, result)

    def test_dead_engine_falls_back_to_scalar(self, monkeypatch):
        """A dead static grid engine reroutes to scalar == a --no-batch run."""
        grid = chaos_grid()
        nobatch = run_sweep(grid, ALGOS, batch_static=False, batch_dynamic=True)

        def dead(*args, **kwargs):
            raise RuntimeError("chaos: engine down")

        monkeypatch.setattr(runner_mod, "simulate_static_cells", dead)
        stats = SweepStats()
        tracer = Tracer()
        result = run_sweep(grid, ALGOS, retry=FAST_RETRY, stats=stats,
                           tracer=tracer)
        assert np.array_equal(nobatch.makespans["UMR"], result.makespans["UMR"])
        # 4 platforms × 2 errors, one static algorithm (UMR).
        assert stats.engine_fallbacks == 8
        assert stats.cells_quarantined == 0
        assert {e.kind for e in tracer.events()} == {"engine_fallback"}

    def test_poisoned_cell_quarantines_not_aborts(self, baseline, monkeypatch):
        """A poisoned cell in the static grid pass degrades the pass to
        per-cell calls; the cell failing every rung becomes NaN + ledger,
        and its siblings keep their merged-pass results bit for bit."""
        grid = chaos_grid()
        poison = _cell_seeds(grid, 1, 1)[0]
        real_cells = runner_mod.simulate_static_cells
        real_fast = runner_mod.simulate_fast

        def batch(cells, mode="multiply", **kw):
            if any(c.seeds[0] == poison for c in cells):
                raise RuntimeError("chaos: poisoned cell")
            return real_cells(cells, mode=mode, **kw)

        def fast(platform, work, scheduler, model, **kw):
            if kw.get("seed") == poison:
                raise RuntimeError("chaos: poisoned cell")
            return real_fast(platform, work, scheduler, model, **kw)

        monkeypatch.setattr(runner_mod, "simulate_static_cells", batch)
        monkeypatch.setattr(runner_mod, "simulate_fast", fast)
        stats = SweepStats()
        ledger = FailureLedger()
        result = run_sweep(grid, ALGOS, retry=FAST_RETRY, stats=stats,
                           failures=ledger)
        assert stats.cells_quarantined == 1
        assert np.isnan(result.makespans["UMR"][1, 1]).all()
        (entry,) = ledger.entries
        assert (entry.algorithm, entry.platform_index, entry.error_index) == (
            "UMR", 1, 1,
        )
        assert entry.engine == "static-batch"
        assert entry.fallback_engine == "scalar"
        # Every other cell is untouched, bit for bit.
        for algo in ALGOS:
            got, want = result.makespans[algo], baseline.makespans[algo]
            mask = np.isnan(got)
            assert np.array_equal(got[~mask], want[~mask]), algo
            assert mask.sum() == (3 if algo == "UMR" else 0)

    def test_merged_lockstep_failure_degrades_per_cell(self, baseline,
                                                       monkeypatch):
        """The merged dynbatch pass failing degrades to per-cell lockstep
        calls — bitwise identical to the merged pass."""
        grid = chaos_grid()
        real = runner_mod.simulate_dynamic_cells

        def merged_down(cells, mode="multiply", **kw):
            if len(cells) > 1:
                raise RuntimeError("chaos: merged pass down")
            return real(cells, mode=mode, **kw)

        monkeypatch.setattr(runner_mod, "simulate_dynamic_cells", merged_down)
        stats = SweepStats()
        result = run_sweep(grid, ALGOS, retry=FAST_RETRY, stats=stats)
        assert stats.retries >= FAST_RETRY.max_attempts - 1
        assert stats.cells_quarantined == 0
        assert_tensors_equal(baseline, result)

    def test_poisoned_dynamic_cell_preserves_siblings(self, baseline,
                                                      monkeypatch):
        """One poisoned lockstep cell falls down the ladder alone — every
        sibling cell of the degraded pass keeps its merged-pass result."""
        grid = chaos_grid()
        poison = _cell_seeds(grid, 0, 0)[0]
        real = runner_mod.simulate_dynamic_cells

        def poisoned(cells, mode="multiply", **kw):
            if any(c.seeds[0] == poison for c in cells):
                raise RuntimeError("chaos: poisoned cell")
            return real(cells, mode=mode, **kw)

        monkeypatch.setattr(runner_mod, "simulate_dynamic_cells", poisoned)
        stats = SweepStats()
        ledger = FailureLedger()
        result = run_sweep(grid, ALGOS, retry=FAST_RETRY, stats=stats,
                           failures=ledger)
        # Both dynamic algorithms' (0, 0) cells reroute to the scalar
        # engine (which succeeds), everything else stays lockstep.
        assert stats.engine_fallbacks == 2
        assert stats.cells_quarantined == 0 and len(ledger) == 0
        for algo in ALGOS:
            got, want = result.makespans[algo], baseline.makespans[algo]
            assert np.isfinite(got).all(), algo
            if algo == "UMR":
                assert np.array_equal(got, want)
            else:
                assert np.array_equal(got[1:], want[1:]), algo
                assert np.array_equal(got[0, 1:], want[0, 1:]), algo

    def test_scalar_engine_chaos_heals(self, monkeypatch):
        """Retries also guard the scalar engine (the --no-batch path)."""
        grid = chaos_grid()
        algos = ("FSC",)
        base = run_sweep(grid, algos, batch_static=False, batch_dynamic=False)
        real = runner_mod.simulate_fast
        counts: dict = {}

        def flaky(platform, work, scheduler, model, **kw):
            seed = kw.get("seed")
            if chaos_selected(seed, fraction=0.25):
                counts[seed] = counts.get(seed, 0) + 1
                if counts[seed] <= 1:
                    raise RuntimeError("chaos: transient scalar failure")
            return real(platform, work, scheduler, model, **kw)

        monkeypatch.setattr(runner_mod, "simulate_fast", flaky)
        stats = SweepStats()
        # A retry restarts the whole cell at repetition 0, so a cell with
        # k chaos-hit repetition seeds needs k+1 attempts: budget for all
        # three repetitions failing once each.
        result = run_sweep(
            grid, algos, stats=stats, batch_static=False, batch_dynamic=False,
            retry=RetryPolicy(max_attempts=4, backoff_base_s=0.0),
        )
        assert np.array_equal(base.makespans["FSC"], result.makespans["FSC"])
        assert stats.cells_quarantined == 0


# ---------------------------------------------------------------------------
# Checkpoints and resume


class _Interrupt(KeyboardInterrupt):
    """Distinguishable stand-in for a mid-sweep Ctrl-C."""


class TestCheckpointsAndResume:
    def test_interrupted_sweep_resumes_remainder_only(self, scalar_baseline,
                                                      tmp_path, monkeypatch):
        grid = chaos_grid()

        def interrupting(done, total):
            if done == 2:
                raise _Interrupt()

        with pytest.raises(_Interrupt):
            run_sweep(grid, ALGOS, checkpoint_dir=tmp_path,
                      batch_static=False, batch_dynamic=False,
                      progress=interrupting)
        shards = list(tmp_path.glob("partial/*/platform-*.npz"))
        assert len(shards) == 2

        recomputed = []
        real = runner_mod._run_platform

        def counting(grid_, point, p_idx, *args, **kwargs):
            recomputed.append(p_idx)
            return real(grid_, point, p_idx, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "_run_platform", counting)
        stats = SweepStats()
        calls = []
        result = run_sweep(
            grid, ALGOS, checkpoint_dir=tmp_path, resume=True, stats=stats,
            batch_static=False, batch_dynamic=False,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert_tensors_equal(scalar_baseline, result)
        assert sorted(recomputed) == [2, 3]
        # 2 shards × 2 errors × 3 loop algorithms (no batch passes).
        assert stats.cells_resumed == 12
        total_cells = 4 * 2 * len(ALGOS)
        assert stats.cells_resumed < total_cells
        # Progress stays monotone and completes; resumed shards are
        # reported up front.
        assert calls[0] == (2, 4) and calls[-1] == (4, 4)
        assert all(a <= b for (a, _), (b, _) in zip(calls, calls[1:]))
        # Clean completion clears the partial directory.
        assert not list(tmp_path.glob("partial/*/platform-*.npz"))

    def test_corrupt_shard_is_recomputed(self, scalar_baseline, tmp_path):
        grid = chaos_grid()

        def interrupting(done, total):
            if done == 2:
                raise _Interrupt()

        with pytest.raises(_Interrupt):
            run_sweep(grid, ALGOS, checkpoint_dir=tmp_path,
                      batch_static=False, batch_dynamic=False,
                      progress=interrupting)
        shards = sorted(tmp_path.glob("partial/*/platform-*.npz"))
        shards[0].write_bytes(b"\x00garbage\x00" * 64)

        stats = SweepStats()
        result = run_sweep(grid, ALGOS, checkpoint_dir=tmp_path, resume=True,
                           batch_static=False, batch_dynamic=False, stats=stats)
        assert_tensors_equal(scalar_baseline, result)
        assert stats.cells_resumed == 6  # only the intact shard survived

    def test_resume_without_checkpoints_runs_cold(self, baseline, tmp_path):
        stats = SweepStats()
        result = run_sweep(chaos_grid(), ALGOS, checkpoint_dir=tmp_path,
                           resume=True, stats=stats)
        assert stats.cells_resumed == 0
        assert_tensors_equal(baseline, result)

    def test_resumed_shard_restores_quarantine_ledger(self, tmp_path,
                                                      monkeypatch):
        """NaNs inherited from a resumed static grid shard keep their
        ledger entries.

        The poisoned static pass quarantines UMR's (0, 0) cell and
        flushes the ``staticgrid`` shard + ledger; the sweep then dies
        in the lockstep pass.  The resume trusts the shard, replays the
        ledger entry, and recomputes only the lockstep pass.
        """
        grid = chaos_grid()
        poison = _cell_seeds(grid, 0, 0)[0]
        real_cells = runner_mod.simulate_static_cells
        real_fast = runner_mod.simulate_fast
        real_dyn = runner_mod.simulate_dynamic_cells

        def batch(cells, mode="multiply", **kw):
            if any(c.seeds[0] == poison for c in cells):
                raise RuntimeError("chaos: poisoned cell")
            return real_cells(cells, mode=mode, **kw)

        def fast(platform, work, scheduler, model, **kw):
            if kw.get("seed") == poison:
                raise RuntimeError("chaos: poisoned cell")
            return real_fast(platform, work, scheduler, model, **kw)

        def interrupt(cells, mode="multiply", **kw):
            raise _Interrupt()

        monkeypatch.setattr(runner_mod, "simulate_static_cells", batch)
        monkeypatch.setattr(runner_mod, "simulate_fast", fast)
        monkeypatch.setattr(runner_mod, "simulate_dynamic_cells", interrupt)

        with pytest.raises(_Interrupt):
            run_sweep(grid, ALGOS, retry=FAST_RETRY, checkpoint_dir=tmp_path)
        monkeypatch.setattr(runner_mod, "simulate_static_cells", real_cells)
        monkeypatch.setattr(runner_mod, "simulate_fast", real_fast)
        monkeypatch.setattr(runner_mod, "simulate_dynamic_cells", real_dyn)

        stats = SweepStats()
        ledger = FailureLedger()
        result = run_sweep(grid, ALGOS, checkpoint_dir=tmp_path, resume=True,
                           stats=stats, failures=ledger)
        assert np.isnan(result.makespans["UMR"][0, 0]).all()
        assert [(e.algorithm, e.platform_index, e.error_index)
                for e in ledger] == [("UMR", 0, 0)]
        (entry,) = ledger.entries
        assert entry.engine == "static-batch"
        assert entry.fallback_engine == "scalar"
        # The whole static grid came back from the shard: 4 platforms ×
        # 2 errors × 1 static algorithm.
        assert stats.cells_resumed == 8
        # The completed sweep persists the ledger next to the cache files.
        (ledger_file,) = tmp_path.glob("failures-sweep-*.json")
        assert len(FailureLedger.from_json(ledger_file.read_text())) == 1

    def test_sigkill_and_resume(self, scalar_baseline, tmp_path):
        """SIGKILL a sweep subprocess mid-run; resume recomputes only the
        unfinished shards and reproduces the tensor bitwise."""
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        script = f"""
import sys, time
sys.path.insert(0, {str(src)!r})
from repro.experiments.config import smoke_grid
from repro.experiments.runner import run_sweep

grid = smoke_grid().restrict(
    Ns=(10, 20), bandwidth_factors=(1.4, 1.8), cLats=(0.0,), nLats=(0.1,),
    errors=(0.0, 0.2), repetitions=3,
)

def slow(done, total):
    print(f"shard {{done}}/{{total}}", flush=True)
    time.sleep(0.5)

run_sweep(grid, {ALGOS!r}, checkpoint_dir={str(tmp_path)!r},
          batch_static=False, batch_dynamic=False, progress=slow)
"""
        proc = subprocess.Popen(
            [sys.executable, "-c", script], stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if len(list(tmp_path.glob("partial/*/platform-*.npz"))) >= 1:
                    break
                if proc.poll() is not None:
                    pytest.fail("sweep subprocess finished before the kill")
                time.sleep(0.02)
            else:
                pytest.fail("no checkpoint shard appeared within 60s")
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        survivors = list(tmp_path.glob("partial/*/platform-*.npz"))
        assert survivors, "SIGKILL left no shards to resume from"

        stats = SweepStats()
        result = run_sweep(chaos_grid(), ALGOS, checkpoint_dir=tmp_path,
                           resume=True, batch_static=False,
                           batch_dynamic=False, stats=stats)
        assert_tensors_equal(scalar_baseline, result)
        assert 0 < stats.cells_resumed
        assert stats.cells_resumed < 4 * 2 * len(ALGOS)


# ---------------------------------------------------------------------------
# Pool supervision (fork-only: monkeypatches must reach the workers)


@fork_only
class TestPoolSupervision:
    def test_broken_pool_restarts_once(self, scalar_baseline, tmp_path,
                                       monkeypatch):
        real = runner_mod.simulate_fast
        parent = os.getpid()
        flag = tmp_path / "died-once"

        def die_once(platform, work, scheduler, model, **kw):
            if os.getpid() != parent and not flag.exists():
                flag.touch()
                os._exit(1)
            return real(platform, work, scheduler, model, **kw)

        monkeypatch.setattr(runner_mod, "simulate_fast", die_once)
        stats = SweepStats()
        result = run_sweep(chaos_grid(), ALGOS, n_jobs=2, stats=stats,
                           batch_static=False, batch_dynamic=False)
        assert_tensors_equal(scalar_baseline, result)
        assert stats.pool_restarts == 1
        assert stats.pool_degradations == 0

    def test_persistently_broken_pool_degrades_to_serial(self, scalar_baseline,
                                                         monkeypatch):
        real = runner_mod.simulate_fast
        parent = os.getpid()

        def die(platform, work, scheduler, model, **kw):
            if os.getpid() != parent:
                os._exit(1)
            return real(platform, work, scheduler, model, **kw)

        monkeypatch.setattr(runner_mod, "simulate_fast", die)
        stats = SweepStats()
        result = run_sweep(chaos_grid(), ALGOS, n_jobs=2, stats=stats,
                           batch_static=False, batch_dynamic=False)
        assert_tensors_equal(scalar_baseline, result)
        assert stats.pool_restarts == 1
        assert stats.pool_degradations == 1

    def test_hung_shard_times_out_and_recomputes(self, scalar_baseline,
                                                 monkeypatch):
        real = runner_mod.simulate_fast
        parent = os.getpid()

        def hang(platform, work, scheduler, model, **kw):
            if os.getpid() != parent:
                time.sleep(60)
            return real(platform, work, scheduler, model, **kw)

        monkeypatch.setattr(runner_mod, "simulate_fast", hang)
        stats = SweepStats()
        t0 = time.monotonic()
        result = run_sweep(
            chaos_grid(), ALGOS, n_jobs=2, stats=stats,
            batch_static=False, batch_dynamic=False,
            retry=RetryPolicy(backoff_base_s=0.0, cell_timeout_s=1.0),
        )
        assert time.monotonic() - t0 < 30.0
        assert_tensors_equal(scalar_baseline, result)
        assert stats.pool_timeouts == 1

    def test_pool_worker_quarantines_ship_back(self, monkeypatch):
        grid = chaos_grid()
        poison = _cell_seeds(grid, 1, 0)[0]
        real_fast = runner_mod.simulate_fast

        def fast(platform, work, scheduler, model, **kw):
            if kw.get("seed") == poison and scheduler.name == "UMR":
                raise RuntimeError("chaos: poisoned cell")
            return real_fast(platform, work, scheduler, model, **kw)

        monkeypatch.setattr(runner_mod, "simulate_fast", fast)
        stats = SweepStats()
        ledger = FailureLedger()
        result = run_sweep(grid, ALGOS, n_jobs=2, retry=FAST_RETRY,
                           stats=stats, failures=ledger,
                           batch_static=False, batch_dynamic=False)
        assert stats.cells_quarantined == 1
        assert np.isnan(result.makespans["UMR"][1, 0]).all()
        (entry,) = ledger.entries
        assert (entry.algorithm, entry.platform_index) == ("UMR", 1)
        assert entry.engine == "scalar" and entry.fallback_engine is None


# ---------------------------------------------------------------------------
# Progress plumbing (satellite: eta_progress + monotonicity under retries)


class TestProgress:
    def test_progress_monotone_under_retries(self, monkeypatch):
        grid = chaos_grid()
        real = runner_mod.simulate_fast
        counts: dict = {}

        def flaky(platform, work, scheduler, model, **kw):
            key = (scheduler.name, kw.get("seed"))
            counts[key] = counts.get(key, 0) + 1
            if counts[key] <= 1:
                raise RuntimeError("chaos")
            return real(platform, work, scheduler, model, **kw)

        monkeypatch.setattr(runner_mod, "simulate_fast", flaky)
        calls = []
        # Each repetition seed fails once and a retry restarts the cell
        # at repetition 0, so a 3-repetition cell needs 4 attempts.
        run_sweep(grid, ALGOS, batch_static=False, batch_dynamic=False,
                  retry=RetryPolicy(max_attempts=4, backoff_base_s=0.0),
                  progress=lambda d, t: calls.append((d, t)))
        assert calls[-1] == (4, 4)
        dones = [d for d, _ in calls]
        assert dones == sorted(dones)
        assert all(t == 4 for _, t in calls)

    def test_eta_progress_renders_and_terminates(self):
        stream = io.StringIO()
        callback = eta_progress(stream)
        callback(1, 2)
        callback(2, 2)
        out = stream.getvalue()
        assert "[1/2 platforms]" in out and "[2/2 platforms]" in out
        assert out.endswith("\n")  # the final report closes the line
