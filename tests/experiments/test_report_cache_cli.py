"""Tests for report rendering, the sweep cache, and the CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.experiments.cache import cached_sweep, load_sweep, save_sweep, sweep_key
from repro.experiments.config import smoke_grid
from repro.experiments.figures import fig4a
from repro.experiments.report import (
    ascii_chart,
    figure_csv,
    render_figure,
    render_table,
    table_csv,
)
from repro.experiments.runner import run_sweep
from repro.experiments.tables import table2

ALGOS = ("RUMR", "UMR", "Factoring")


@pytest.fixture(scope="module")
def results():
    grid = smoke_grid().restrict(
        Ns=(10,), bandwidth_factors=(1.5,), cLats=(0.1,), nLats=(0.1,),
        errors=(0.0, 0.2, 0.4), repetitions=2,
    )
    return run_sweep(grid, algorithms=ALGOS)


class TestReport:
    def test_render_table_contains_rows(self, results):
        text = render_table(table2(results))
        assert "UMR" in text and "Factoring" in text and "overall" in text

    def test_table_csv_parses(self, results):
        lines = table_csv(table2(results)).strip().splitlines()
        header = lines[0].split(",")
        assert header[0] == "algorithm"
        assert len(lines) == 1 + 2  # two competitors

    def test_figure_csv_shape(self, results):
        fig = fig4a(results)
        lines = figure_csv(fig).strip().splitlines()
        assert len(lines) == 1 + 3  # header + one row per error value
        assert lines[0].startswith("error,")

    def test_ascii_chart_renders(self, results):
        chart = ascii_chart(fig4a(results))
        assert "error" in chart
        assert "·" in chart  # the y=1.0 parity rule

    def test_render_figure_combines(self, results):
        out = render_figure(fig4a(results))
        assert "error," in out


class TestCache:
    def test_roundtrip(self, results, tmp_path):
        path = save_sweep(results, tmp_path)
        loaded = load_sweep(path)
        assert loaded.algorithms == results.algorithms
        assert loaded.grid == results.grid
        assert loaded.platforms == results.platforms
        for algo in ALGOS:
            assert np.array_equal(loaded.makespans[algo], results.makespans[algo])

    def test_key_changes_with_grid(self, results):
        key1 = sweep_key(results.grid, ALGOS)
        key2 = sweep_key(results.grid.restrict(seed=1), ALGOS)
        key3 = sweep_key(results.grid, ("RUMR", "UMR"))
        assert key1 != key2 and key1 != key3

    def test_cached_sweep_runs_then_loads(self, results, tmp_path):
        calls = []
        first = cached_sweep(
            results.grid, ALGOS, tmp_path,
            progress=lambda d, t: calls.append(d),
        )
        assert calls  # actually ran
        calls.clear()
        second = cached_sweep(
            results.grid, ALGOS, tmp_path,
            progress=lambda d, t: calls.append(d),
        )
        assert not calls  # loaded from disk
        for algo in ALGOS:
            assert np.array_equal(first.makespans[algo], second.makespans[algo])

    def test_roundtrip_nontrivial_grid(self, tmp_path):
        # Multiple platforms, error levels and repetitions — the loaded
        # object must reconstruct every axis and tensor exactly.
        grid = smoke_grid().restrict(
            Ns=(8, 12), bandwidth_factors=(1.4, 1.8), cLats=(0.0, 0.2),
            nLats=(0.1,), errors=(0.0, 0.1, 0.3), repetitions=3,
        )
        results = run_sweep(grid, algorithms=("UMR", "RUMR", "MI-2"))
        loaded = load_sweep(save_sweep(results, tmp_path))
        assert loaded.grid == results.grid
        assert loaded.algorithms == results.algorithms
        assert loaded.platforms == results.platforms
        assert len(loaded.platforms) == 8
        for algo in results.algorithms:
            assert np.array_equal(loaded.makespans[algo], results.makespans[algo])

    def test_cached_sweep_revalidates_algorithms(self, results, tmp_path):
        import json

        cached_sweep(results.grid, ALGOS, tmp_path)
        # Tamper with the sidecar so the entry claims a different
        # algorithm list than requested; cached_sweep must re-run instead
        # of returning the stale entry.
        key = sweep_key(results.grid, ALGOS)
        meta_path = tmp_path / f"sweep-{results.grid.name}-{key}.json"
        meta = json.loads(meta_path.read_text())
        meta["algorithms"] = ["UMR", "RUMR", "Factoring"]  # reordered
        meta_path.write_text(json.dumps(meta))
        calls = []
        again = cached_sweep(
            results.grid, ALGOS, tmp_path,
            progress=lambda d, t: calls.append(d),
        )
        assert calls  # re-ran rather than trusting the tampered entry
        assert again.algorithms == ALGOS

    def test_cached_sweep_survives_corrupt_sidecar(self, results, tmp_path):
        import json

        cached_sweep(results.grid, ALGOS, tmp_path)
        # A sidecar naming an algorithm absent from the .npz used to
        # raise KeyError out of load_sweep; cached_sweep must treat the
        # entry as invalid and re-run instead.
        key = sweep_key(results.grid, ALGOS)
        meta_path = tmp_path / f"sweep-{results.grid.name}-{key}.json"
        meta = json.loads(meta_path.read_text())
        meta["algorithms"] = ["bogus"]
        meta_path.write_text(json.dumps(meta))
        calls = []
        again = cached_sweep(
            results.grid, ALGOS, tmp_path,
            progress=lambda d, t: calls.append(d),
        )
        assert calls
        assert again.algorithms == ALGOS
        for algo in ALGOS:
            assert np.array_equal(again.makespans[algo], results.makespans[algo])

    def test_cached_sweep_batch_flag_consistent(self, results, tmp_path):
        scalar = cached_sweep(
            results.grid, ALGOS, tmp_path / "a", batch_static=False
        )
        batched = cached_sweep(
            results.grid, ALGOS, tmp_path / "b", batch_static=True
        )
        # Zero-error column identical across paths; at error > 0 the batch
        # engines (static and lockstep-dynamic) are distributionally
        # identical but may diverge bitwise where resampling fires.
        for algo in ALGOS:
            assert np.array_equal(
                scalar.makespans[algo][:, 0, :], batched.makespans[algo][:, 0, :]
            )
            assert batched.makespans[algo] == pytest.approx(
                scalar.makespans[algo], rel=0.2
            )
        # With the lockstep path switched off, batch-dynamic algorithms
        # run the scalar engine and match it bitwise at every error level.
        half = cached_sweep(
            results.grid, ALGOS, tmp_path / "c",
            batch_static=True, batch_dynamic=False,
        )
        for algo in ("RUMR", "Factoring"):
            assert np.array_equal(half.makespans[algo], scalar.makespans[algo])


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "RUMR" in out and "Factoring" in out

    def test_table2_smoke_to_files(self, tmp_path, capsys):
        rc = main([
            "table2", "--preset", "smoke", "--results", str(tmp_path / "res"),
            "--out", str(tmp_path / "out"), "--quiet",
        ])
        assert rc == 0
        table_file = tmp_path / "out" / "table2-smoke.txt"
        csv_file = tmp_path / "out" / "table2-csv-smoke.txt"
        assert table_file.exists() and csv_file.exists()
        assert "RUMR outperforms" in table_file.read_text()
        assert csv_file.read_text().startswith("algorithm,")

    def test_fig7_smoke_stdout(self, tmp_path, capsys):
        rc = main([
            "fig7", "--preset", "smoke", "--results", str(tmp_path / "res"), "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RUMR-plain" in out

    def test_sweep_command_caches(self, tmp_path, capsys):
        rc = main([
            "sweep", "--preset", "smoke", "--results", str(tmp_path / "res"), "--quiet",
        ])
        assert rc == 0
        assert list((tmp_path / "res").glob("sweep-*.npz"))

    def test_error_mode_flag(self, tmp_path):
        rc = main([
            "sweep", "--preset", "smoke", "--results", str(tmp_path / "res"),
            "--quiet", "--error-mode", "divide",
        ])
        assert rc == 0

    def test_no_batch_flag(self, tmp_path):
        rc = main([
            "sweep", "--preset", "smoke", "--results", str(tmp_path / "res"),
            "--quiet", "--no-batch",
        ])
        assert rc == 0
        assert list((tmp_path / "res").glob("sweep-*.npz"))
