"""Tests for metrics, Table 2/3 generation, and figure generators."""

import math

import numpy as np
import pytest

from repro.experiments.config import smoke_grid
from repro.experiments.figures import fig4a, fig4b, fig5_grid, fig6, fig7
from repro.experiments.metrics import (
    PAPER_BUCKETS,
    error_buckets,
    mean_normalized_makespan,
    outperform_fraction,
    overall_outperform_fraction,
)
from repro.experiments.runner import run_sweep
from repro.experiments.tables import table2, table3

ALGOS = ("RUMR", "UMR", "MI-1", "Factoring")


@pytest.fixture(scope="module")
def results():
    grid = smoke_grid().restrict(repetitions=2)
    return run_sweep(grid, algorithms=ALGOS)


class TestBuckets:
    def test_paper_buckets_are_five(self):
        assert len(PAPER_BUCKETS) == 5

    def test_bucket_membership(self):
        idx = error_buckets((0.0, 0.05, 0.1, 0.25, 0.48))
        assert idx[0].tolist() == [0, 1]
        assert idx[1].tolist() == [2]
        assert idx[2].tolist() == [3]
        assert idx[3].tolist() == []
        assert idx[4].tolist() == [4]

    def test_gap_values_dropped(self):
        # 0.09 falls between the paper's buckets.
        idx = error_buckets((0.09,))
        assert all(a.size == 0 for a in idx)


class TestOutperform:
    def test_fraction_bounds(self, results):
        for algo in ("UMR", "MI-1", "Factoring"):
            frac = outperform_fraction(results, algo)
            assert np.all(frac >= 0.0) and np.all(frac <= 1.0)

    def test_zero_error_ties_count_as_losses(self, results):
        # RUMR == UMR exactly at error 0: strict outperformance is 0.
        frac = outperform_fraction(results, "UMR")
        assert frac[0] == 0.0

    def test_margin_reduces_fraction(self, results):
        loose = outperform_fraction(results, "MI-1", margin=0.0)
        tight = outperform_fraction(results, "MI-1", margin=0.1)
        assert np.all(tight <= loose + 1e-12)

    def test_overall_matches_mean(self, results):
        per_error = outperform_fraction(results, "MI-1")
        overall = overall_outperform_fraction(results, "MI-1")
        assert overall == pytest.approx(float(per_error.mean()))


class TestNormalizedMakespan:
    def test_reference_ratio_is_one(self, results):
        ratios = mean_normalized_makespan(results, "RUMR")
        assert np.allclose(ratios, 1.0)

    def test_mi1_well_above_one(self, results):
        ratios = mean_normalized_makespan(results, "MI-1")
        assert np.all(ratios > 1.0)


class TestTables:
    def test_table2_rows_ordered_like_paper(self, results):
        table = table2(results)
        assert list(table.rows) == ["UMR", "MI-1", "Factoring"]

    def test_table_values_are_percentages(self, results):
        table = table2(results)
        for values in table.rows.values():
            for v in values:
                assert math.isnan(v) or 0.0 <= v <= 100.0

    def test_table3_is_no_larger_than_table2(self, results):
        t2, t3 = table2(results), table3(results)
        for algo in t2.rows:
            for a, b in zip(t3.rows[algo], t2.rows[algo]):
                if not (math.isnan(a) or math.isnan(b)):
                    assert a <= b + 1e-9

    def test_overall_column(self, results):
        table = table2(results)
        assert set(table.overall) == set(table.rows)


class TestFigures:
    def test_fig4a_has_all_competitors(self, results):
        fig = fig4a(results)
        assert set(fig.series) == {"UMR", "MI-1", "Factoring"}
        assert fig.errors == results.grid.errors

    def test_fig4b_is_low_latency_subset(self, results):
        fig = fig4b(results)
        assert set(fig.series) == {"UMR", "MI-1", "Factoring"}

    def test_fig5_grid_is_the_paper_point(self):
        grid = fig5_grid(smoke_grid())
        assert grid.Ns == (20,)
        assert grid.bandwidth_factors == (1.8,)
        assert grid.cLats == (0.3,)
        assert grid.nLats == (0.9,)

    def test_fig6_series_labels(self):
        grid = smoke_grid().restrict(
            Ns=(10,), bandwidth_factors=(1.5,), cLats=(0.1,), nLats=(0.1,),
            errors=(0.0, 0.3), repetitions=2,
        )
        fig = fig6(grid)
        assert set(fig.series) == {"RUMR_50", "RUMR_60", "RUMR_70", "RUMR_80", "RUMR_90"}

    def test_fig7_series_labels(self):
        grid = smoke_grid().restrict(
            Ns=(10,), bandwidth_factors=(1.5,), cLats=(0.1,), nLats=(0.1,),
            errors=(0.0, 0.3), repetitions=2,
        )
        fig = fig7(grid)
        assert set(fig.series) == {"RUMR-plain"}
