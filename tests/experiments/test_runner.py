"""Tests for the sweep runner and its seeding discipline."""

import numpy as np
import pytest

from repro.experiments.config import smoke_grid
from repro.experiments.runner import SweepResults, run_sweep

ALGOS = ("RUMR", "UMR", "Factoring")


@pytest.fixture(scope="module")
def tiny_results():
    grid = smoke_grid().restrict(
        Ns=(10,), bandwidth_factors=(1.5,), cLats=(0.0, 0.2), nLats=(0.1,),
        errors=(0.0, 0.2), repetitions=3,
    )
    return run_sweep(grid, algorithms=ALGOS)


class TestRunSweep:
    def test_tensor_shapes(self, tiny_results):
        for algo in ALGOS:
            assert tiny_results.makespans[algo].shape == (2, 2, 3)

    def test_all_makespans_positive_finite(self, tiny_results):
        for tensor in tiny_results.makespans.values():
            assert np.all(np.isfinite(tensor))
            assert np.all(tensor > 0)

    def test_zero_error_column_deterministic(self, tiny_results):
        # With error = 0 every repetition is identical.
        for tensor in tiny_results.makespans.values():
            zero_col = tensor[:, 0, :]
            assert np.all(zero_col == zero_col[:, :1])

    def test_rumr_equals_umr_at_zero_error(self, tiny_results):
        assert np.allclose(
            tiny_results.makespans["RUMR"][:, 0, :],
            tiny_results.makespans["UMR"][:, 0, :],
        )

    def test_sweep_reproducible(self, tiny_results):
        again = run_sweep(tiny_results.grid, algorithms=ALGOS)
        for algo in ALGOS:
            assert np.array_equal(
                tiny_results.makespans[algo], again.makespans[algo]
            )

    def test_seed_changes_results(self, tiny_results):
        other = run_sweep(
            tiny_results.grid.restrict(seed=777), algorithms=ALGOS
        )
        # Error columns beyond zero must differ.
        assert not np.array_equal(
            tiny_results.makespans["Factoring"][:, 1, :],
            other.makespans["Factoring"][:, 1, :],
        )

    def test_duplicate_algorithms_rejected(self, tiny_results):
        with pytest.raises(ValueError):
            run_sweep(tiny_results.grid, algorithms=("UMR", "UMR"))

    def test_progress_callback_called(self, tiny_results):
        calls = []
        run_sweep(
            tiny_results.grid,
            algorithms=("UMR",),
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls[-1] == (tiny_results.grid.num_platforms,) * 1 + (calls[-1][1],)
        assert calls[-1][0] == calls[-1][1]


class TestFastPath:
    """The batched static path against the all-scalar reference."""

    STATIC = ("UMR", "MI-2", "OneRound")
    DYNAMIC = ("RUMR", "Factoring")

    @pytest.fixture(scope="class")
    def paths(self):
        grid = smoke_grid().restrict(
            Ns=(8,), bandwidth_factors=(1.6,), cLats=(0.1,), nLats=(0.1,),
            errors=(0.0, 0.1, 0.3), repetitions=4,
        )
        algos = self.STATIC + self.DYNAMIC
        batched = run_sweep(grid, algorithms=algos, batch_static=True)
        scalar = run_sweep(grid, algorithms=algos, batch_static=False)
        return batched, scalar

    def test_static_exact_at_zero_error(self, paths):
        batched, scalar = paths
        for algo in self.STATIC:
            assert np.array_equal(
                batched.makespans[algo][:, 0, :], scalar.makespans[algo][:, 0, :]
            ), algo

    def test_static_close_at_positive_error(self, paths):
        # At error > 0 the paths are distributionally identical; bitwise
        # divergence only where truncation resampling fires (rare), so the
        # tensors stay within a loose relative tolerance.
        batched, scalar = paths
        for algo in self.STATIC:
            assert np.allclose(
                batched.makespans[algo], scalar.makespans[algo], rtol=0.15
            ), algo

    def test_dynamic_identical_everywhere(self, paths):
        # Dynamic algorithms run the scalar engine on both paths with the
        # same per-cell seeds — the pairing must be untouched.
        batched, scalar = paths
        for algo in self.DYNAMIC:
            assert np.array_equal(
                batched.makespans[algo], scalar.makespans[algo]
            ), algo

    def test_uniform_error_kind_falls_back(self):
        # Non-normal error kinds are not batchable; both flags must give
        # bit-identical tensors because both use the scalar engine.
        grid = smoke_grid().restrict(
            Ns=(8,), bandwidth_factors=(1.6,), cLats=(0.1,), nLats=(0.1,),
            errors=(0.0, 0.2), repetitions=2, error_kind="uniform",
        )
        batched = run_sweep(grid, algorithms=("UMR", "RUMR"), batch_static=True)
        scalar = run_sweep(grid, algorithms=("UMR", "RUMR"), batch_static=False)
        for algo in ("UMR", "RUMR"):
            assert np.array_equal(
                batched.makespans[algo], scalar.makespans[algo]
            )


class TestSweepResults:
    def test_select_filters_platforms(self, tiny_results):
        subset = tiny_results.select(lambda p: p.cLat == 0.0)
        assert len(subset.platforms) == 1
        assert subset.makespans["UMR"].shape[0] == 1

    def test_select_empty_rejected(self, tiny_results):
        with pytest.raises(ValueError):
            tiny_results.select(lambda p: p.N == 999)

    def test_reference_is_rumr(self, tiny_results):
        assert tiny_results.reference == "RUMR"

    def test_shape_validation(self, tiny_results):
        with pytest.raises(ValueError):
            SweepResults(
                grid=tiny_results.grid,
                algorithms=("UMR",),
                platforms=tiny_results.platforms,
                makespans={"UMR": np.zeros((1, 1, 1))},
            )
