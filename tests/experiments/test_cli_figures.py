"""Tests for the figure-producing CLI paths (smoke preset)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def results_dir(tmp_path_factory):
    # One shared cache dir: the first command sweeps, the rest reuse it.
    return str(tmp_path_factory.mktemp("res"))


class TestFigureCommands:
    def test_fig4a_stdout(self, results_dir, capsys):
        rc = main(["fig4a", "--preset", "smoke", "--results", results_dir, "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out
        assert "error,UMR" in out

    def test_fig4b_reuses_cache(self, results_dir, capsys):
        rc = main(["fig4b", "--preset", "smoke", "--results", results_dir, "--quiet"])
        assert rc == 0
        assert "cLat < 0.3" in capsys.readouterr().out

    def test_fig6_writes_artifact(self, results_dir, tmp_path, capsys):
        rc = main([
            "fig6", "--preset", "smoke", "--results", results_dir,
            "--out", str(tmp_path), "--quiet",
        ])
        assert rc == 0
        content = (tmp_path / "fig6-smoke.txt").read_text()
        assert "RUMR_80" in content

    def test_table3_stdout(self, results_dir, capsys):
        rc = main(["table3", "--preset", "smoke", "--results", results_dir, "--quiet"])
        assert rc == 0
        assert "at least 10%" in capsys.readouterr().out

    def test_seed_override_changes_artifacts(self, tmp_path, capsys):
        base = str(tmp_path / "a")
        other = str(tmp_path / "b")
        main(["fig7", "--preset", "smoke", "--results", base, "--quiet"])
        first = capsys.readouterr().out
        main(["fig7", "--preset", "smoke", "--results", other, "--seed", "99", "--quiet"])
        second = capsys.readouterr().out
        assert first != second
