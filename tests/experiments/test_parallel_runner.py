"""Tests for the process-pool sweep path (n_jobs > 1)."""

import numpy as np
import pytest

from repro.experiments.config import smoke_grid
from repro.experiments.runner import run_sweep

ALGOS = ("RUMR", "UMR")


@pytest.fixture(scope="module")
def tiny_grid():
    return smoke_grid().restrict(
        Ns=(10,), bandwidth_factors=(1.5,), cLats=(0.0, 0.2), nLats=(0.1, 0.2),
        errors=(0.0, 0.2), repetitions=2,
    )


def test_parallel_matches_serial(tiny_grid):
    serial = run_sweep(tiny_grid, algorithms=ALGOS, n_jobs=1)
    parallel = run_sweep(tiny_grid, algorithms=ALGOS, n_jobs=2)
    for algo in ALGOS:
        assert np.array_equal(serial.makespans[algo], parallel.makespans[algo])


def test_parallel_matches_serial_scalar_path(tiny_grid):
    # batch_static must reach pool workers through the initializer too.
    serial = run_sweep(tiny_grid, algorithms=ALGOS, n_jobs=1, batch_static=False)
    parallel = run_sweep(tiny_grid, algorithms=ALGOS, n_jobs=2, batch_static=False)
    for algo in ALGOS:
        assert np.array_equal(serial.makespans[algo], parallel.makespans[algo])


def test_n_jobs_minus_one_uses_cpu_count(tiny_grid):
    serial = run_sweep(tiny_grid, algorithms=ALGOS, n_jobs=1)
    auto = run_sweep(tiny_grid, algorithms=ALGOS, n_jobs=-1)
    for algo in ALGOS:
        assert np.array_equal(serial.makespans[algo], auto.makespans[algo])


@pytest.mark.parametrize("n_jobs", [0, -2])
def test_invalid_n_jobs_rejected(tiny_grid, n_jobs):
    with pytest.raises(ValueError):
        run_sweep(tiny_grid, algorithms=ALGOS, n_jobs=n_jobs)


def test_parallel_progress_callback(tiny_grid):
    calls = []
    run_sweep(
        tiny_grid,
        algorithms=("UMR",),
        n_jobs=2,
        progress=lambda done, total: calls.append((done, total)),
    )
    assert calls[-1][0] == calls[-1][1] == tiny_grid.num_platforms
