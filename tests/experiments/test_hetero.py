"""Tests for the heterogeneity extension study."""

import pytest

from repro.core import RUMR, UMR, Factoring
from repro.experiments.hetero import (
    HeteroResult,
    heterogeneous_platform_family,
    run_hetero_study,
)
from repro.platform import full_utilization_fraction


class TestPlatformFamily:
    def test_zero_level_is_homogeneous(self):
        p = heterogeneous_platform_family(10, 0.0)
        assert p.is_homogeneous
        assert p[0].B == pytest.approx(18.0)

    def test_aggregate_compute_rate_preserved(self):
        base = heterogeneous_platform_family(12, 0.0)
        for level in (0.5, 1.0, 3.0):
            p = heterogeneous_platform_family(12, level)
            assert p.total_compute_rate() == pytest.approx(base.total_compute_rate())

    def test_utilization_margin_preserved(self):
        base = heterogeneous_platform_family(12, 0.0)
        for level in (0.5, 2.0):
            p = heterogeneous_platform_family(12, level)
            assert full_utilization_fraction(p) == pytest.approx(
                full_utilization_fraction(base), rel=1e-9
            )

    def test_spread_grows_with_level(self):
        lo = heterogeneous_platform_family(20, 0.5)
        hi = heterogeneous_platform_family(20, 4.0)
        def spread(p):
            speeds = [w.S for w in p]
            return max(speeds) / min(speeds)
        assert spread(hi) > spread(lo) > 1.0

    def test_deterministic_in_seed(self):
        a = heterogeneous_platform_family(8, 1.0, seed=5)
        b = heterogeneous_platform_family(8, 1.0, seed=5)
        c = heterogeneous_platform_family(8, 1.0, seed=6)
        assert a == b
        assert a != c

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            heterogeneous_platform_family(4, -0.1)


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_hetero_study(
            {
                "RUMR": lambda: RUMR(known_error=0.3),
                "RUMR-weighted": lambda: RUMR(known_error=0.3, phase2_weighted=True),
                "UMR": lambda: UMR(),
                "Factoring": lambda: Factoring(),
            },
            levels=(0.0, 1.0, 3.0),
            n=8,
            repetitions=8,
        )

    def test_result_shape(self, study):
        assert isinstance(study, HeteroResult)
        assert set(study.means) == {"RUMR", "RUMR-weighted", "UMR", "Factoring"}
        assert all(len(v) == 3 for v in study.means.values())

    def test_makespans_positive(self, study):
        assert all(v > 0 for vs in study.means.values() for v in vs)

    def test_normalization(self, study):
        normalized = study.normalized_to("RUMR")
        assert "RUMR" not in normalized
        assert all(len(v) == 3 for v in normalized.values())

    def test_rumr_beats_umr_at_low_heterogeneity(self, study):
        normalized = study.normalized_to("RUMR")
        assert normalized["UMR"][0] > 1.0
        assert normalized["UMR"][1] > 1.0

    def test_plain_phase2_chokes_at_high_heterogeneity(self, study):
        # Plain factoring's equal phase-2 chunks make the slowest worker
        # the straggler of every batch: at 3x spread RUMR loses to UMR.
        assert study.means["RUMR"][-1] > study.means["UMR"][-1]

    def test_weighted_phase2_restores_advantage(self, study):
        # The WeightedFactoring phase 2 keeps RUMR ahead at every level.
        weighted = study.means["RUMR-weighted"]
        assert all(w < u * 1.02 for w, u in zip(weighted, study.means["UMR"]))
        assert weighted[-1] < study.means["RUMR"][-1]

    def test_factoring_collapses_under_heterogeneity(self, study):
        fact = study.means["Factoring"]
        assert fact[-1] > 1.5 * fact[0]
