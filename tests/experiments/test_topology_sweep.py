"""Tests for the topology axis of the experiment layer.

The topology spec is part of the grid identity (cache keys must split on
it), non-star grids route around the batch engines, star cells of a
topology sweep must be bitwise identical to a plain sweep, and the
sweep/degradation/figure chain must hold together end to end.
"""

import numpy as np
import pytest

from repro.experiments.cache import sweep_key
from repro.experiments.config import ExperimentGrid, smoke_grid
from repro.experiments.runner import run_sweep
from repro.experiments.topology import (
    robustness_transfer,
    run_topology_sweep,
    topology_degradation,
    topology_figure,
)

pytestmark = pytest.mark.topology

ALGOS = ("RUMR", "Factoring")
SPECS = ("chain:relay=sf", "tree:fanout=2")


def tiny_grid(**overrides) -> ExperimentGrid:
    base = smoke_grid().restrict(
        Ns=(10,), bandwidth_factors=(1.5,), cLats=(0.2,), nLats=(0.1,),
        errors=(0.0, 0.2), repetitions=2, name="tiny-topo",
    )
    return base.restrict(**overrides) if overrides else base


class TestGridTopologyField:
    def test_default_is_star(self):
        assert tiny_grid().topology == "star"
        assert not tiny_grid().has_topology

    def test_restrict_accepts_topology(self):
        grid = tiny_grid(topology="chain:relay=sf")
        assert grid.has_topology
        assert grid.topology == "chain:relay=sf"

    def test_invalid_spec_fails_at_build_time(self):
        with pytest.raises(ValueError):
            tiny_grid(topology="ring:n=4")

    def test_sharedbw_with_faults_rejected(self):
        with pytest.raises(ValueError):
            tiny_grid(topology="sharedbw:cap=2", fault="crash:worker=0,at=30")

    def test_cache_key_includes_topology(self):
        keys = {
            sweep_key(tiny_grid(), ALGOS),
            sweep_key(tiny_grid(topology="chain:relay=sf"), ALGOS),
            sweep_key(tiny_grid(topology="tree:fanout=2"), ALGOS),
        }
        assert len(keys) == 3


class TestTopologyRouting:
    def test_star_grid_keeps_batch_engines(self):
        from repro.obs import SweepStats

        stats = SweepStats()
        run_sweep(tiny_grid(), algorithms=ALGOS, stats=stats)
        assert stats.cells["scalar"] == 0

    def test_non_star_grid_routes_scalar(self):
        from repro.obs import SweepStats

        stats = SweepStats()
        run_sweep(tiny_grid(topology="chain:relay=sf"), algorithms=ALGOS,
                  stats=stats)
        assert stats.cells["scalar"] > 0
        assert stats.cells["static-batch"] == 0
        assert stats.cells["dynbatch"] == 0

    def test_chain_sweep_is_finite_and_slower(self):
        star = run_sweep(tiny_grid(), algorithms=ALGOS)
        chain = run_sweep(tiny_grid(topology="chain:relay=sf"), algorithms=ALGOS)
        for algo in ALGOS:
            assert np.all(np.isfinite(chain.makespans[algo]))
            assert chain.makespans[algo].mean() > star.makespans[algo].mean()


class TestTopologySweep:
    @pytest.fixture(scope="class")
    def results(self):
        return run_topology_sweep(tiny_grid(), SPECS, algorithms=ALGOS)

    def test_star_baseline_always_included(self, results):
        assert results.topology_specs[0] == "star"
        assert set(results.topology_specs) == {"star", *SPECS}

    def test_star_cells_match_plain_sweep(self, results):
        plain = run_sweep(tiny_grid(), algorithms=ALGOS)
        for algo in ALGOS:
            assert np.array_equal(
                results.sweeps["star"].makespans[algo], plain.makespans[algo]
            )

    def test_degradation_baseline_is_one(self, results):
        for algo in ALGOS:
            deg = topology_degradation(results, algo)
            assert deg["star"] == pytest.approx(1.0)
            assert all(v >= 1.0 for v in deg.values())

    def test_robustness_transfer_shape(self, results):
        transfer = robustness_transfer(results, "RUMR")
        assert set(transfer) == {"star", *SPECS}
        assert all(np.isfinite(v) and v > 0 for v in transfer.values())

    def test_figure_renders(self, results):
        fig = topology_figure(results)
        assert set(fig.series) == set(ALGOS)
        for algo in ALGOS:
            assert len(fig.series[algo]) == len(results.topology_specs)
        assert "topolog" in (fig.title + fig.xlabel).lower()

    def test_duplicate_specs_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_topology_sweep(
                tiny_grid(), ("star", "chain:relay=sf", "chain:relay=sf"),
                algorithms=ALGOS,
            )
