"""Sweep-cache hardening: atomic saves, typed corruption, quarantine.

Covers the failure modes a cache directory accumulates over a long
campaign — truncated npz files, hand-edited or deleted sidecars,
mismatched npz/json pairs — and pins that every one surfaces as a typed
:class:`CacheCorruptionError` from :func:`load_sweep` and degrades to a
quarantine-plus-recompute (never an exception, never a wrong tensor) in
:func:`cached_sweep`.
"""

import json

import numpy as np
import pytest

from repro.experiments.cache import (
    CacheCorruptionError,
    cached_sweep,
    load_sweep,
    save_sweep,
    sweep_key,
)
from repro.experiments.config import smoke_grid
from repro.experiments.runner import run_sweep
from repro.obs import SweepStats

ALGOS = ("RUMR", "UMR", "Factoring")


@pytest.fixture(scope="module")
def grid():
    return smoke_grid().restrict(
        Ns=(10,), bandwidth_factors=(1.4, 1.8), cLats=(0.0,), nLats=(0.1,),
        errors=(0.0, 0.2), repetitions=3,
    )


@pytest.fixture(scope="module")
def results(grid):
    return run_sweep(grid, ALGOS)


def _saved(results, directory):
    return save_sweep(results, directory)


class TestLoadSweepErrors:
    def test_missing_entry_raises_typed_error(self, tmp_path):
        missing = tmp_path / "sweep-none-0000.npz"
        with pytest.raises(CacheCorruptionError) as err:
            load_sweep(missing)
        # The bare FileNotFoundError is wrapped, and the offending path
        # (the sidecar, read first) is carried on the exception.
        assert err.value.path == missing.with_suffix(".json")

    def test_truncated_npz(self, results, tmp_path):
        npz = _saved(results, tmp_path)
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 3])
        with pytest.raises(CacheCorruptionError) as err:
            load_sweep(npz)
        assert err.value.path == npz

    def test_garbage_npz(self, results, tmp_path):
        npz = _saved(results, tmp_path)
        npz.write_bytes(b"not a zip archive")
        with pytest.raises(CacheCorruptionError):
            load_sweep(npz)

    def test_unparsable_sidecar(self, results, tmp_path):
        npz = _saved(results, tmp_path)
        npz.with_suffix(".json").write_text("{ truncated")
        with pytest.raises(CacheCorruptionError) as err:
            load_sweep(npz)
        assert err.value.path == npz.with_suffix(".json")

    def test_sidecar_missing_keys(self, results, tmp_path):
        npz = _saved(results, tmp_path)
        meta = json.loads(npz.with_suffix(".json").read_text())
        del meta["algorithms"]
        npz.with_suffix(".json").write_text(json.dumps(meta))
        with pytest.raises(CacheCorruptionError):
            load_sweep(npz)

    def test_missing_tensor_key(self, results, tmp_path):
        npz = _saved(results, tmp_path)
        meta = json.loads(npz.with_suffix(".json").read_text())
        meta["algorithms"].append("NotInTheNpz")
        npz.with_suffix(".json").write_text(json.dumps(meta))
        # The bare KeyError from the npz lookup is wrapped too.
        with pytest.raises(CacheCorruptionError):
            load_sweep(npz)

    def test_mismatched_pair_fails_content_hash(self, results, grid, tmp_path):
        """An npz restored next to a sidecar from a different run is
        rejected by the sidecar's content hash."""
        npz = _saved(results, tmp_path)
        other = run_sweep(
            grid.restrict(seed=grid.seed + 1, name=grid.name), ALGOS
        )
        forged = save_sweep(other, tmp_path / "other")
        npz.write_bytes(forged.read_bytes())
        with pytest.raises(CacheCorruptionError) as err:
            load_sweep(npz)
        assert "content hash" in str(err.value)

    def test_clean_roundtrip_still_works(self, results, tmp_path):
        npz = _saved(results, tmp_path)
        loaded = load_sweep(npz)
        assert loaded.algorithms == results.algorithms
        for algo in ALGOS:
            assert np.array_equal(loaded.makespans[algo],
                                  results.makespans[algo])
        meta = json.loads(npz.with_suffix(".json").read_text())
        assert "content_sha256" in meta  # readers can verify the pair


class TestCachedSweepQuarantine:
    def test_corrupt_entry_quarantined_and_recomputed(self, grid, results,
                                                      tmp_path):
        npz = _saved(results, tmp_path)
        npz.write_bytes(b"garbage")
        stats = SweepStats()
        recomputed = cached_sweep(grid, ALGOS, tmp_path, stats=stats)
        assert stats.cache_corrupt_quarantined == 1
        assert stats.cache_hits == 0 and stats.cache_misses == 1
        for algo in ALGOS:
            assert np.array_equal(recomputed.makespans[algo],
                                  results.makespans[algo])
        # Both files moved aside for post-mortem, then replaced by the
        # fresh save.
        assert (tmp_path / "corrupt" / npz.name).exists()
        assert (tmp_path / "corrupt" / npz.with_suffix(".json").name).exists()
        assert npz.exists()
        # And the fresh entry is served as a hit afterwards.
        stats2 = SweepStats()
        cached_sweep(grid, ALGOS, tmp_path, stats=stats2)
        assert stats2.cache_hits == 1
        assert stats2.cache_corrupt_quarantined == 0

    def test_corrupt_sidecar_quarantined(self, grid, results, tmp_path):
        npz = _saved(results, tmp_path)
        npz.with_suffix(".json").write_text("{ nope")
        stats = SweepStats()
        cached_sweep(grid, ALGOS, tmp_path, stats=stats)
        assert stats.cache_corrupt_quarantined == 1
        assert (tmp_path / "corrupt" / npz.with_suffix(".json").name).exists()

    def test_stats_summary_reports_quarantines(self):
        stats = SweepStats(cache_hits=1, cache_misses=2,
                           cache_corrupt_quarantined=1)
        assert (
            "cache: 1 hit(s), 2 miss(es), 1 corrupt entr(ies) quarantined"
            in stats.summary()
        )
        # The suffix only appears when something was quarantined, keeping
        # the common-case line stable.
        clean = SweepStats(cache_hits=1, cache_misses=2)
        (cache_line,) = [
            line for line in clean.summary().splitlines()
            if line.startswith("cache:")
        ]
        assert cache_line == "cache: 1 hit(s), 2 miss(es)"

    def test_key_stable_across_import_paths(self, grid):
        # sweep_key moved to config but remains importable from cache.
        from repro.experiments.config import sweep_key as config_key

        assert sweep_key(grid, ALGOS) == config_key(grid, ALGOS)
