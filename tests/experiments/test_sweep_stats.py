"""Tests for sweep-level stats collection (runner, cache, CLI)."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.registry import (
    is_batch_dynamic_algorithm,
    is_static_algorithm,
)
from repro.experiments.cache import cached_sweep
from repro.experiments.config import smoke_grid
from repro.experiments.runner import run_sweep
from repro.obs import SweepStats

ALGOS = ("RUMR", "UMR", "Factoring", "MI-2")


@pytest.fixture
def grid():
    return smoke_grid().restrict(
        Ns=(6,), bandwidth_factors=(1.5,), cLats=(0.1, 0.3), nLats=(0.1,),
        errors=(0.0, 0.2), repetitions=2,
    )


class TestRunSweepStats:
    def test_routing_accounts_every_cell(self, grid):
        stats = SweepStats()
        run_sweep(grid, algorithms=ALGOS, stats=stats)
        num_cells = grid.num_platforms * len(grid.errors)
        assert stats.total_cells == num_cells * len(ALGOS)
        assert stats.total_runs == grid.num_simulations(len(ALGOS))
        # Registry knowledge predicts the split exactly.
        n_static = sum(1 for a in ALGOS if is_static_algorithm(a))
        n_dyn = sum(1 for a in ALGOS if is_batch_dynamic_algorithm(a))
        assert stats.cells["static-batch"] == num_cells * n_static
        assert stats.cells["dynbatch"] == num_cells * n_dyn
        assert stats.cells["scalar"] == 0

    def test_scalar_routing_when_batching_disabled(self, grid):
        stats = SweepStats()
        run_sweep(grid, algorithms=ALGOS, batch_static=False,
                  batch_dynamic=False, stats=stats)
        assert stats.cells["static-batch"] == 0
        assert stats.cells["dynbatch"] == 0
        assert stats.cells["scalar"] == stats.total_cells > 0

    def test_timings_and_wall_recorded(self, grid):
        stats = SweepStats()
        run_sweep(grid, algorithms=ALGOS, stats=stats)
        assert stats.total_wall_s > 0.0
        assert stats.lockstep_wall_s > 0.0  # RUMR/Factoring lockstep pass
        assert stats.staticgrid_wall_s > 0.0  # UMR/MI-2 whole-grid pass
        # Both batch passes report aggregate wall times; per-cell timings
        # only appear for scalar cells, of which this grid has none.
        assert stats.cell_timings == []

    def test_scalar_cells_are_timed_when_batching_disabled(self, grid):
        stats = SweepStats()
        run_sweep(grid, algorithms=ALGOS, batch_static=False,
                  batch_dynamic=False, stats=stats)
        assert stats.cell_timings, "scalar cells must be timed"
        assert all(t.wall_s >= 0.0 for t in stats.cell_timings)
        assert {t.engine for t in stats.cell_timings} == {"scalar"}
        assert {t.algorithm for t in stats.cell_timings} == set(ALGOS)

    def test_stats_do_not_perturb_results(self, grid):
        plain = run_sweep(grid, algorithms=ALGOS)
        stats = SweepStats()
        observed = run_sweep(grid, algorithms=ALGOS, stats=stats)
        for a in ALGOS:
            assert np.array_equal(plain.makespans[a], observed.makespans[a])

    def test_pool_path_still_counts_routing(self, grid):
        # Per-cell timings happen in pool workers and are skipped, but
        # routing is analytic (grid + flags) and must still be exact.
        stats = SweepStats()
        run_sweep(grid, algorithms=ALGOS, n_jobs=2, stats=stats)
        assert stats.total_runs == grid.num_simulations(len(ALGOS))


class TestCachedSweepStats:
    def test_miss_then_hit(self, grid, tmp_path):
        stats = SweepStats()
        cached_sweep(grid, ALGOS, tmp_path, stats=stats)
        assert (stats.cache_misses, stats.cache_hits) == (1, 0)
        assert stats.total_runs > 0  # miss forwarded to run_sweep
        cached_sweep(grid, ALGOS, tmp_path, stats=stats)
        assert (stats.cache_misses, stats.cache_hits) == (1, 1)


class TestStatsCli:
    def test_stats_command_prints_report(self, tmp_path, capsys):
        code = main(["stats", "--results", str(tmp_path), "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep stats:" in out
        assert "engine routing:" in out
        assert "cache: 0 hit(s), 1 miss(es)" in out
        # Second invocation hits the cache written by the first.
        code = main(["stats", "--results", str(tmp_path), "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache: 1 hit(s), 0 miss(es)" in out
