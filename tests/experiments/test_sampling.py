"""Tests for platform sampling and the paper-sample preset."""

import pytest

from repro.experiments.config import paper_grid, paper_sample_grid, preset_grid


class TestPlatformSampling:
    def test_sample_size_respected(self):
        grid = paper_sample_grid(platforms=50)
        assert grid.num_platforms == 50
        assert len(grid.platforms()) == 50

    def test_sample_is_subset_of_full_grid(self):
        full = set(paper_grid().platforms())
        sample = paper_sample_grid(platforms=80).platforms()
        assert all(p in full for p in sample)
        assert len(set(sample)) == 80  # no duplicates

    def test_sample_deterministic_in_seed(self):
        a = paper_sample_grid(platforms=40).platforms()
        b = paper_sample_grid(platforms=40).platforms()
        c = paper_sample_grid(platforms=40).restrict(seed=7).platforms()
        assert a == b
        assert a != c

    def test_sample_spans_the_axes(self):
        # 150 uniform draws should touch every N and most latency values.
        sample = paper_sample_grid(platforms=150).platforms()
        assert {p.N for p in sample} == set(range(10, 51, 5))
        assert len({p.cLat for p in sample}) >= 9
        assert len({p.nLat for p in sample}) >= 9

    def test_oversized_sample_degenerates_to_full_grid(self):
        grid = paper_grid().restrict(platform_sample=10**9)
        assert grid.num_platforms == paper_grid().num_platforms

    def test_zero_means_no_sampling(self):
        assert paper_grid().platform_sample == 0
        assert paper_grid().num_platforms == 9 * 9 * 11 * 11

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            paper_grid().restrict(platform_sample=-1)

    def test_preset_registered(self):
        grid = preset_grid("paper-sample")
        assert grid.name == "paper-sample"
        assert grid.errors == paper_grid().errors  # the full 0.02-step axis

    def test_num_simulations_uses_sample(self):
        grid = paper_sample_grid(platforms=10, repetitions=2)
        assert grid.num_simulations(7) == 10 * 26 * 2 * 7
