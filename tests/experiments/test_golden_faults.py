"""Golden-trace regression: the fault sweep reproduces bit-for-bit.

``tests/data/golden_fault_sweep.json`` pins every makespan of a small
fault sweep (4 workers, two error levels, three scenarios, three
algorithms).  Any change to engine arithmetic, RNG stream layout, fault
sampling order or recovery scheduling shows up here as an exact-equality
failure — deliberately strict, because the two engines' bit-equality and
the sweep cache both depend on runs being byte-stable across versions.

To regenerate after an *intentional* semantics change::

    PYTHONPATH=src python -c "
    import json, pathlib
    from tests.experiments.test_golden_faults import GOLDEN_PATH, golden_grid, GOLDEN_SPECS, GOLDEN_ALGOS
    from repro.experiments.runner import run_fault_sweep
    r = run_fault_sweep(golden_grid(), GOLDEN_SPECS, algorithms=GOLDEN_ALGOS)
    payload = json.loads(GOLDEN_PATH.read_text())
    payload['makespans'] = {s: {a: r.sweeps[s].makespans[a].tolist() for a in GOLDEN_ALGOS} for s in r.fault_specs}
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + chr(10))
    "
"""

import json
import pathlib

import numpy as np
import pytest

from repro.experiments.config import ExperimentGrid
from repro.experiments.runner import run_fault_sweep, run_sweep

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "data" / "golden_fault_sweep.json"

GOLDEN_SPECS = ("crash:p=0.6,tmax=30", "pause:p=1,tmax=20,dur=10")
GOLDEN_ALGOS = ("RUMR", "UMR", "Factoring")


def golden_grid() -> ExperimentGrid:
    return ExperimentGrid(
        name="golden-faults",
        Ns=(4,),
        bandwidth_factors=(1.5,),
        cLats=(0.2,),
        nLats=(0.1,),
        errors=(0.0, 0.2),
        repetitions=3,
        total_work=200.0,
        seed=77,
    )


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_file_describes_this_grid(golden):
    grid = golden_grid()
    meta = golden["grid"]
    assert tuple(meta["Ns"]) == grid.Ns
    assert tuple(meta["errors"]) == grid.errors
    assert meta["seed"] == grid.seed
    assert meta["total_work"] == grid.total_work
    assert golden["fault_specs"] == ["none", *GOLDEN_SPECS]
    assert golden["algorithms"] == list(GOLDEN_ALGOS)


def test_fault_sweep_reproduces_golden_bit_for_bit(golden):
    results = run_fault_sweep(golden_grid(), GOLDEN_SPECS, algorithms=GOLDEN_ALGOS)
    for spec in results.fault_specs:
        for algo in GOLDEN_ALGOS:
            expected = np.array(golden["makespans"][spec][algo])
            actual = results.sweeps[spec].makespans[algo]
            assert np.array_equal(actual, expected), (
                f"makespan drift for {algo} under {spec!r}"
            )


def test_single_scenario_matches_golden_slice(golden):
    # run_sweep on the faulted grid directly must agree with the
    # run_fault_sweep entry — same cells, same seeds, same routing.
    spec = GOLDEN_SPECS[0]
    import dataclasses

    results = run_sweep(
        dataclasses.replace(golden_grid(), fault=spec), algorithms=GOLDEN_ALGOS
    )
    for algo in GOLDEN_ALGOS:
        expected = np.array(golden["makespans"][spec][algo])
        assert np.array_equal(results.makespans[algo], expected)
