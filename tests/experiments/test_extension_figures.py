"""Tests for the extension-study figure adapters."""

import pytest

from repro.experiments.extension_figures import (
    fig_adaptive,
    fig_hetero,
    fig_multiport,
    fig_output_ratio,
    hetero_to_figure,
)
from repro.experiments.report import ascii_chart, figure_csv


class TestHeteroFigure:
    @pytest.fixture(scope="class")
    def fig(self):
        return fig_hetero(n=8, repetitions=3, levels=(0.0, 2.0))

    def test_series_and_axis(self, fig):
        assert set(fig.series) == {"Factoring", "RUMR", "RUMR-weighted"}
        assert fig.errors == (0.0, 2.0)

    def test_renders(self, fig):
        assert "heterogeneity" in ascii_chart(fig)
        assert figure_csv(fig).startswith("error,")

    def test_normalization_reference_excluded(self, fig):
        assert "UMR" not in fig.series


class TestAdaptiveFigure:
    def test_oracle_normalization(self):
        fig = fig_adaptive(n=8, repetitions=3, errors=(0.0, 0.3))
        # At error 0 the oracle is plain UMR: ratio exactly 1.
        assert fig.series["UMR"][0] == pytest.approx(1.0)
        # Adaptive tracks the oracle within 10% everywhere on this slice.
        assert all(abs(v - 1.0) < 0.10 for v in fig.series["AdaptiveRUMR"])


class TestOutputFigure:
    def test_axis_is_ratio(self):
        fig = fig_output_ratio(n=8, repetitions=2, ratios=(0.0, 0.5))
        assert fig.errors == (0.0, 0.5)
        assert set(fig.series) == {"UMR", "Factoring"}


class TestMultiportFigure:
    def test_one_port_is_parity(self):
        fig = fig_multiport(n=8, repetitions=2, ports=(1, 4))
        for series in fig.series.values():
            assert series[0] == pytest.approx(1.0)
            assert series[1] <= 1.0 + 1e-9  # extra ports never hurt


class TestAdapter:
    def test_hetero_to_figure_reference_choice(self):
        from repro.core import RUMR, UMR
        from repro.experiments.hetero import run_hetero_study

        study = run_hetero_study(
            {"UMR": lambda: UMR(), "RUMR": lambda: RUMR(known_error=0.3)},
            levels=(0.0,), n=6, repetitions=2,
        )
        fig = hetero_to_figure(study, reference="RUMR")
        assert set(fig.series) == {"UMR"}
