"""Tests for experiment grids."""

import pytest

from repro.experiments.config import (
    PAPER_ALGORITHMS,
    ExperimentGrid,
    paper_grid,
    preset_grid,
    small_grid,
    smoke_grid,
)


class TestPaperGrid:
    def test_matches_table1(self):
        grid = paper_grid()
        assert grid.Ns == (10, 15, 20, 25, 30, 35, 40, 45, 50)
        assert grid.bandwidth_factors[0] == pytest.approx(1.2)
        assert grid.bandwidth_factors[-1] == pytest.approx(2.0)
        assert len(grid.bandwidth_factors) == 9
        assert grid.cLats == tuple(pytest.approx(0.1 * k) for k in range(11))
        assert grid.nLats == tuple(pytest.approx(0.1 * k) for k in range(11))
        assert grid.total_work == 1000.0
        assert grid.S == 1.0
        assert grid.repetitions == 40

    def test_error_axis_covers_0_to_half(self):
        grid = paper_grid()
        assert grid.errors[0] == 0.0
        assert grid.errors[-1] == pytest.approx(0.5)
        assert len(grid.errors) == 26  # step 0.02

    def test_platform_count(self):
        assert paper_grid().num_platforms == 9 * 9 * 11 * 11

    def test_num_simulations(self):
        grid = smoke_grid()
        expected = (
            grid.num_platforms * len(grid.errors) * grid.repetitions * 7
        )
        assert grid.num_simulations(7) == expected


class TestPresets:
    def test_preset_lookup(self):
        assert preset_grid("paper").name == "paper"
        assert preset_grid("small").name == "small"
        assert preset_grid("smoke").name == "smoke"

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            preset_grid("gigantic")

    def test_small_spans_table1_ranges(self):
        grid = small_grid()
        assert min(grid.Ns) == 10 and max(grid.Ns) >= 40
        assert min(grid.cLats) == 0.0 and max(grid.cLats) == 1.0
        assert min(grid.nLats) == 0.0 and max(grid.nLats) == 1.0

    def test_small_contains_fig4b_subset(self):
        grid = small_grid()
        assert any(c < 0.3 for c in grid.cLats)
        assert any(n < 0.3 for n in grid.nLats)

    def test_smoke_is_fast(self):
        assert smoke_grid().num_simulations(7) < 2000


class TestGridMechanics:
    def test_platforms_build(self):
        for point in smoke_grid().platforms():
            platform = point.build()
            assert platform.N == point.N
            assert platform[0].B == pytest.approx(point.bandwidth_factor * point.N)

    def test_restrict_replaces_axes(self):
        grid = smoke_grid().restrict(errors=(0.0, 0.5), repetitions=2)
        assert grid.errors == (0.0, 0.5)
        assert grid.repetitions == 2

    def test_restrict_rejects_unknown_axis(self):
        with pytest.raises(ValueError):
            smoke_grid().restrict(workers=(1,))

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentGrid(
                name="bad", Ns=(), bandwidth_factors=(1.5,), cLats=(0.0,),
                nLats=(0.0,), errors=(0.1,),
            )
        with pytest.raises(ValueError):
            smoke_grid().restrict(repetitions=0)

    def test_paper_algorithms_are_seven(self):
        assert len(PAPER_ALGORITHMS) == 7
        assert PAPER_ALGORITHMS[0] == "RUMR"
