"""Tests for the statistical utilities."""

import pytest

from repro.experiments.config import smoke_grid
from repro.experiments.runner import run_sweep
from repro.experiments.stats import (
    ConfidenceInterval,
    bootstrap_ci,
    sign_test_pvalue,
    win_rate_ci,
)

ALGOS = ("RUMR", "UMR", "MI-1")


@pytest.fixture(scope="module")
def results():
    grid = smoke_grid().restrict(
        Ns=(10,), bandwidth_factors=(1.5,), cLats=(0.1, 0.3), nLats=(0.1,),
        errors=(0.0, 0.3), repetitions=8,
    )
    return run_sweep(grid, algorithms=ALGOS)


class TestConfidenceInterval:
    def test_contains_and_width(self):
        ci = ConfidenceInterval(estimate=1.1, low=1.0, high=1.2, level=0.95)
        assert 1.05 in ci
        assert 0.9 not in ci
        assert ci.width == pytest.approx(0.2)


class TestBootstrap:
    def test_estimate_inside_interval(self, results):
        ci = bootstrap_ci(results, "MI-1", error_index=1)
        assert ci.low <= ci.estimate <= ci.high

    def test_reference_interval_degenerate_at_one(self, results):
        ci = bootstrap_ci(results, "RUMR", error_index=0)
        assert ci.estimate == pytest.approx(1.0)
        assert ci.width == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_given_seed(self, results):
        a = bootstrap_ci(results, "MI-1", error_index=1, seed=3)
        b = bootstrap_ci(results, "MI-1", error_index=1, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_higher_level_widens(self, results):
        narrow = bootstrap_ci(results, "MI-1", error_index=1, level=0.80)
        wide = bootstrap_ci(results, "MI-1", error_index=1, level=0.99)
        assert wide.width >= narrow.width

    def test_bad_level_rejected(self, results):
        with pytest.raises(ValueError):
            bootstrap_ci(results, "MI-1", error_index=0, level=1.5)

    def test_mi1_interval_excludes_parity(self, results):
        # MI-1 is far worse than RUMR on this grid: parity outside the CI.
        ci = bootstrap_ci(results, "MI-1", error_index=1)
        assert ci.low > 1.0


class TestWinRate:
    def test_bounds(self, results):
        ci = win_rate_ci(results, "MI-1")
        assert 0.0 <= ci.low <= ci.estimate <= ci.high <= 1.0

    def test_pooled_vs_single_error(self, results):
        pooled = win_rate_ci(results, "MI-1")
        single = win_rate_ci(results, "MI-1", error_index=1)
        assert pooled.width <= single.width + 1e-9  # more data, tighter

    def test_margin_reduces_rate(self, results):
        loose = win_rate_ci(results, "MI-1", margin=0.0)
        tight = win_rate_ci(results, "MI-1", margin=0.2)
        assert tight.estimate <= loose.estimate + 1e-12


class TestSignTest:
    def test_all_ties_gives_one(self, results):
        # Error 0: RUMR == UMR exactly, all pairs tie.
        assert sign_test_pvalue(results, "UMR", error_index=0) == 1.0

    def test_dominated_competitor_significant(self, results):
        p = sign_test_pvalue(results, "MI-1", error_index=1)
        assert p < 0.01

    def test_pvalue_in_unit_interval(self, results):
        for algo in ("UMR", "MI-1"):
            for e in (0, 1):
                assert 0.0 <= sign_test_pvalue(results, algo, e) <= 1.0
