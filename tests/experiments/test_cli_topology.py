"""Tests for the topology CLI surface: ``topo``, ``figtopo``, ``--topology``."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.topology


class TestTopoCommand:
    def test_prints_summary_table(self, capsys):
        rc = main(["topo", "--topology", "chain:relay=sf", "--n", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "topology: chain:relay=sf" in out
        assert "kind=chain" in out and "relay links=3" in out
        assert "B_eff" in out and "hops" in out
        # Worker 3 sits behind three store-and-forward hops.
        last = [l for l in out.splitlines() if l.strip().startswith("3")][-1]
        assert last.split()[-1] == "3"

    def test_sharedbw_shows_cap(self, capsys):
        rc = main(["topo", "--topology", "sharedbw:cap=2.5", "--n", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shared cap=2.5" in out

    def test_tree_groups_and_hops(self, capsys):
        rc = main(["topo", "--topology", "tree:fanout=2", "--n", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "relay links=2" in out
        hops = [
            int(line.split()[-1])
            for line in out.splitlines()
            if line.strip() and line.split()[0].isdigit()
        ]
        # Two roots reach the master directly; three children cost one hop.
        assert hops.count(0) == 2 and hops.count(1) == 3

    def test_json_is_byte_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        argv = ["topo", "--topology", "chain:n=6,relay=ct", "--n", "6",
                "--bandwidth-factor", "1.7", "--clat", "0.2", "--nlat", "0.1"]
        assert main(argv + ["--json", str(a)]) == 0
        assert main(argv + ["--json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        payload = json.loads(a.read_text())
        assert payload["spec"] == "chain:n=6,relay=ct"
        assert payload["kind"] == "chain"
        assert payload["N"] == 6
        assert len(payload["workers"]) == 6
        # Canonical serialization: sorted keys, no whitespace, one newline.
        assert a.read_text() == (
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        )

    def test_bad_spec_fails_cleanly(self):
        from repro.platform import TopologyError

        with pytest.raises(TopologyError, match="unknown topology kind"):
            main(["topo", "--topology", "ring:n=4"])


class TestTopologySweepCLI:
    def test_sweep_accepts_topology_flag(self, tmp_path, capsys):
        rc = main([
            "sweep", "--preset", "smoke", "--topology", "chain:relay=sf",
            "--results", str(tmp_path), "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sweep complete" in out

    def test_figtopo_stdout(self, tmp_path, capsys):
        rc = main([
            "figtopo", "--preset", "smoke", "--results", str(tmp_path),
            "--topologies", "chain:relay=sf",
            "--algorithms", "RUMR,Factoring", "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "star" in out and "chain:relay=sf" in out
