"""Tests for the gantt / hetero / adaptive CLI subcommands."""

import pytest

from repro.cli import main


class TestGanttCommand:
    def test_renders_chart(self, capsys):
        rc = main([
            "gantt", "--scheduler", "RUMR", "--n", "4", "--work", "200",
            "--error", "0.3", "--width", "60",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Gantt: RUMR" in out
        assert "link" in out and "w3" in out

    def test_unknown_scheduler_fails_cleanly(self, capsys):
        with pytest.raises(ValueError, match="available"):
            main(["gantt", "--scheduler", "MagicScheduler", "--work", "10"])

    def test_zero_error_deterministic_output(self, capsys):
        main(["gantt", "--n", "3", "--work", "100"])
        first = capsys.readouterr().out
        main(["gantt", "--n", "3", "--work", "100"])
        second = capsys.readouterr().out
        assert first == second


class TestHeteroCommand:
    def test_prints_table(self, capsys):
        rc = main(["hetero", "--n", "6", "--repetitions", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RUMR-weighted" in out
        assert "level" in out
        # Five heterogeneity levels by default.
        assert sum(1 for line in out.splitlines() if line.strip() and line.lstrip()[0].isdigit()) == 5


class TestAdaptiveCommand:
    def test_prints_comparison(self, capsys):
        rc = main(["adaptive", "--n", "6", "--repetitions", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "AdaptiveRUMR" in out and "oracle" in out
        assert "0.50" in out  # the error axis reaches 0.5


class TestExtfigsCommand:
    def test_writes_all_four_artifacts(self, tmp_path, capsys):
        rc = main(["extfigs", "--repetitions", "2", "--out", str(tmp_path)])
        assert rc == 0
        for name in ("ext-hetero", "ext-adaptive", "ext-output", "ext-multiport"):
            path = tmp_path / f"{name}.txt"
            assert path.exists(), name
            assert "error," in path.read_text()
