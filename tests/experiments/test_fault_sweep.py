"""Tests for the fault axis of the experiment layer.

The fault spec is part of the grid identity (cache keys must split on it),
fault cells route through the batch engines (every in-tree scheduler
declares ``batch_supports_faults``) and must agree with the scalar engine
bitwise at error 0, and the fault-sweep/degradation/figure chain must
hold together end to end.
"""

import numpy as np
import pytest

from repro.experiments.cache import cached_sweep, sweep_key
from repro.experiments.config import ExperimentGrid, smoke_grid
from repro.experiments.figures import fault_figure, fig_faults
from repro.experiments.metrics import fault_degradation
from repro.experiments.runner import FaultSweepResults, run_fault_sweep, run_sweep

ALGOS = ("RUMR", "UMR", "Factoring")
CRASH = "crash:worker=0,at=30"


def tiny_grid(**overrides) -> ExperimentGrid:
    base = smoke_grid().restrict(
        Ns=(10,), bandwidth_factors=(1.5,), cLats=(0.2,), nLats=(0.1,),
        errors=(0.0, 0.2), repetitions=2, name="tiny-fault",
    )
    return base.restrict(**overrides) if overrides else base


class TestGridFaultField:
    def test_default_is_fault_free(self):
        assert tiny_grid().fault == "none"
        assert not tiny_grid().has_faults

    def test_restrict_accepts_fault(self):
        grid = tiny_grid(fault=CRASH)
        assert grid.has_faults
        assert grid.fault == CRASH

    def test_invalid_fault_spec_fails_at_build_time(self):
        with pytest.raises(ValueError):
            tiny_grid(fault="meteor:p=1")
        with pytest.raises(ValueError):
            tiny_grid(fault="crash:p=0.2")  # missing tmax

    def test_cache_key_includes_fault(self):
        base = sweep_key(tiny_grid(), ALGOS)
        crash = sweep_key(tiny_grid(fault=CRASH), ALGOS)
        pause = sweep_key(tiny_grid(fault="pause:p=1,tmax=10,dur=5"), ALGOS)
        assert len({base, crash, pause}) == 3


class TestFaultSweep:
    def test_faulty_sweep_differs_from_clean(self):
        clean = run_sweep(tiny_grid(), algorithms=ALGOS)
        faulty = run_sweep(tiny_grid(fault=CRASH), algorithms=ALGOS)
        for algo in ALGOS:
            assert faulty.makespans[algo].shape == clean.makespans[algo].shape
            assert np.all(np.isfinite(faulty.makespans[algo]))
        # A worker lost at t=30 cannot help anyone on average.
        assert (
            faulty.makespans["Factoring"].mean() > clean.makespans["Factoring"].mean()
        )

    def test_fault_cells_stay_on_batch_engines(self):
        # Every in-tree scheduler declares batch_supports_faults, so a
        # fault grid routes zero cells to the scalar engine.
        from repro.obs import SweepStats

        stats = SweepStats()
        run_sweep(tiny_grid(fault=CRASH), algorithms=ALGOS, stats=stats)
        assert stats.cells["scalar"] == 0
        assert stats.cells["static-batch"] > 0
        assert stats.cells["dynbatch"] > 0

    def test_batched_fault_cells_match_scalar(self):
        # Batch on/off under faults: bit-identical at error 0 (the batch
        # engines reproduce the scalar fault semantics exactly), and
        # statistically indistinguishable at error > 0 (the static grid
        # pass may interleave truncation resampling differently).
        grid = tiny_grid(fault=CRASH)
        batched = run_sweep(grid, algorithms=ALGOS, batch_static=True)
        scalar = run_sweep(grid, algorithms=ALGOS, batch_static=False)
        e0 = grid.errors.index(0.0)
        for algo in ALGOS:
            b, s = batched.makespans[algo], scalar.makespans[algo]
            assert np.array_equal(b[:, e0, :], s[:, e0, :]), algo
            assert np.allclose(b.mean(), s.mean(), rtol=0.1), algo

    def test_faulty_sweep_reproducible(self):
        grid = tiny_grid(fault="crash:p=0.5,tmax=100")
        a = run_sweep(grid, algorithms=ALGOS)
        b = run_sweep(grid, algorithms=ALGOS)
        for algo in ALGOS:
            assert np.array_equal(a.makespans[algo], b.makespans[algo])

    def test_cached_sweep_separates_fault_scenarios(self, tmp_path):
        clean = cached_sweep(tiny_grid(), ALGOS, tmp_path)
        faulty = cached_sweep(tiny_grid(fault=CRASH), ALGOS, tmp_path)
        clean_again = cached_sweep(tiny_grid(), ALGOS, tmp_path)
        assert not np.array_equal(
            clean.makespans["Factoring"], faulty.makespans["Factoring"]
        )
        # The clean reload must come from its own cache entry, unpolluted.
        assert np.array_equal(
            clean.makespans["Factoring"], clean_again.makespans["Factoring"]
        )


class TestRunFaultSweep:
    @pytest.fixture(scope="class")
    def fault_results(self) -> FaultSweepResults:
        return run_fault_sweep(tiny_grid(), (CRASH,), algorithms=ALGOS)

    def test_baseline_prepended(self, fault_results):
        assert fault_results.fault_specs == ("none", CRASH)
        assert set(fault_results.sweeps) == {"none", CRASH}

    def test_scenarios_share_base_grid(self, fault_results):
        for spec, sweep in fault_results.sweeps.items():
            assert sweep.grid.fault == spec
            assert sweep.grid.seed == fault_results.base_grid.seed

    def test_duplicate_specs_rejected(self):
        with pytest.raises(ValueError):
            run_fault_sweep(tiny_grid(), (CRASH, CRASH), algorithms=ALGOS)

    def test_degradation_baseline_is_one(self, fault_results):
        for algo in ALGOS:
            degradation = fault_degradation(fault_results, algo)
            assert degradation["none"] == pytest.approx(1.0)
            assert degradation[CRASH] > 0.0
        # RUMR's post-crash re-plan occasionally beats its own fault-free
        # run (its heuristic is not monotone in N), so only Factoring's
        # degradation is asserted to exceed 1.
        assert fault_degradation(fault_results, "Factoring")[CRASH] > 1.0

    def test_degradation_missing_baseline_raises(self, fault_results):
        with pytest.raises(ValueError):
            fault_degradation(fault_results, "RUMR", baseline_spec="bogus")

    def test_fault_figure_shape(self, fault_results):
        fig = fault_figure(fault_results)
        assert fig.errors == (0.0, 1.0)
        assert set(fig.series) == set(ALGOS)
        for values in fig.series.values():
            assert values[0] == pytest.approx(1.0)

    def test_fig_faults_end_to_end(self, tmp_path):
        fig = fig_faults(
            tiny_grid(), (CRASH,), algorithms=("RUMR", "Factoring"),
            directory=tmp_path,
        )
        assert set(fig.series) == {"RUMR", "Factoring"}
        assert all(v > 0 for vals in fig.series.values() for v in vals)


class TestCliFaults:
    def test_fault_flag_threads_into_grid(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--preset", "smoke", "--quiet",
            "--results", str(tmp_path), "--fault", CRASH,
        ])
        assert code == 0
        # The cached entry is keyed by the *faulted* grid.
        from repro.experiments.config import PAPER_ALGORITHMS

        key = sweep_key(smoke_grid().restrict(fault=CRASH), PAPER_ALGORITHMS)
        assert (tmp_path / f"sweep-smoke-{key}.npz").exists()

    def test_figfaults_command(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "figfaults", "--preset", "smoke", "--quiet",
            "--results", str(tmp_path),
            "--faults", CRASH,
            "--algorithms", "RUMR,Factoring",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault scenario index" in out
        assert "RUMR" in out and "Factoring" in out

    def test_figfaults_rejects_bad_spec(self, tmp_path):
        from repro.cli import main

        with pytest.raises(ValueError):
            main([
                "figfaults", "--preset", "smoke", "--quiet",
                "--results", str(tmp_path), "--faults", "meteor:p=1",
            ])
