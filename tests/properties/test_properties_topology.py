"""Property-based tests (hypothesis) for the topology layer.

Three invariant families guard the topology abstraction:

* **spec-grammar round-trip** — ``make_topology(str(t)) == t`` for every
  constructible topology, and the canonical string is a fixed point
  (parsing it and re-rendering changes nothing).
* **star degeneracy** — topologies that collapse to a star (a chain over
  one worker, a tree whose fanout covers every worker) must be *bitwise*
  identical to the plain star engines: same makespan float, same record
  list, on both engines.
* **work conservation across relays** — relay hops delay chunks but never
  create, destroy or split work: on a fault-free run every scheduled
  record is delivered, sizes sum to the workload, and no chunk arrives
  before its send finished.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RUMR, Factoring
from repro.errors import NormalErrorModel, NoError
from repro.platform import (
    ChainTopology,
    SharedBandwidthTopology,
    StarTopology,
    TreeTopology,
    homogeneous_platform,
    make_topology,
)
from repro.sim import simulate
from tests.properties.strategies import finite, seeds

pytestmark = [pytest.mark.property, pytest.mark.topology]

# Optional worker-count pin shared by the grammars that accept one.
_counts = st.one_of(st.none(), st.integers(min_value=1, max_value=64))

#: Any constructible topology, across all four kinds.
topologies = st.one_of(
    st.builds(StarTopology, n=_counts),
    st.builds(ChainTopology, n=_counts, relay=st.sampled_from(["sf", "ct"])),
    st.builds(
        TreeTopology,
        fanout=st.integers(min_value=1, max_value=16),
        n=_counts,
    ),
    st.builds(
        SharedBandwidthTopology,
        cap=st.floats(min_value=0.1, max_value=1000.0, **finite),
        n=_counts,
    ),
)

#: Small homogeneous platforms; relay chains amplify latency so keep the
#: ranges modest for runtime.
small_platforms = st.builds(
    lambda n, factor, clat, nlat: homogeneous_platform(
        n, S=1.0, bandwidth_factor=factor, cLat=clat, nLat=nlat
    ),
    n=st.integers(min_value=2, max_value=8),
    factor=st.floats(min_value=1.1, max_value=3.0, **finite),
    clat=st.floats(min_value=0.0, max_value=0.5, **finite),
    nlat=st.floats(min_value=0.0, max_value=0.5, **finite),
)


class TestSpecGrammarRoundTrip:
    @given(topo=topologies)
    def test_parse_str_round_trips(self, topo):
        assert make_topology(str(topo)) == topo

    @given(topo=topologies)
    def test_canonical_string_is_fixed_point(self, topo):
        canonical = str(topo)
        assert str(make_topology(canonical)) == canonical

    @given(topo=topologies)
    def test_make_topology_is_idempotent_on_instances(self, topo):
        # Passing an already-built topology through the factory is the
        # identity, so call sites can accept str-or-Topology uniformly.
        assert make_topology(topo) is topo


class TestStarDegeneracy:
    @given(
        factor=st.floats(min_value=1.1, max_value=3.0, **finite),
        clat=st.floats(min_value=0.0, max_value=0.5, **finite),
        error=st.floats(min_value=0.0, max_value=0.4, **finite),
        seed=seeds(),
        relay=st.sampled_from(["sf", "ct"]),
        engine=st.sampled_from(["fast", "des"]),
    )
    @settings(max_examples=30)
    def test_chain_of_one_worker_is_star(
        self, factor, clat, error, seed, relay, engine
    ):
        platform = homogeneous_platform(1, bandwidth_factor=factor, cLat=clat)
        model = NormalErrorModel(error) if error else NoError()
        base = simulate(
            platform, 200.0, RUMR(known_error=error), model, seed=seed, engine=engine
        )
        chained = simulate(
            platform,
            200.0,
            RUMR(known_error=error),
            model,
            seed=seed,
            engine=engine,
            topology=f"chain:n=1,relay={relay}",
        )
        assert chained.makespan == base.makespan  # bitwise, not approx
        assert chained.records == base.records

    @given(
        platform=small_platforms,
        extra_fanout=st.integers(min_value=0, max_value=4),
        error=st.floats(min_value=0.0, max_value=0.4, **finite),
        seed=seeds(),
        engine=st.sampled_from(["fast", "des"]),
    )
    @settings(max_examples=30)
    def test_tree_with_full_fanout_is_star(
        self, platform, extra_fanout, error, seed, engine
    ):
        # fanout >= N puts every worker in its own sub-star root slot:
        # no relays, so the run must equal the plain star bit for bit.
        fanout = len(platform.workers) + extra_fanout
        model = NormalErrorModel(error) if error else NoError()
        base = simulate(
            platform, 300.0, Factoring(), model, seed=seed, engine=engine
        )
        treed = simulate(
            platform,
            300.0,
            Factoring(),
            model,
            seed=seed,
            engine=engine,
            topology=f"tree:fanout={fanout}",
        )
        assert treed.makespan == base.makespan
        assert treed.records == base.records


class TestRelayWorkConservation:
    @given(
        platform=small_platforms,
        work=st.floats(min_value=50.0, max_value=2000.0, **finite),
        error=st.floats(min_value=0.0, max_value=0.4, **finite),
        seed=seeds(),
        spec=st.sampled_from(
            ["chain:relay=sf", "chain:relay=ct", "tree:fanout=2", "tree:fanout=3"]
        ),
        engine=st.sampled_from(["fast", "des"]),
    )
    @settings(max_examples=40)
    def test_relays_conserve_work(self, platform, work, error, seed, spec, engine):
        model = NormalErrorModel(error) if error else NoError()
        result = simulate(
            platform,
            work,
            RUMR(known_error=error),
            model,
            seed=seed,
            engine=engine,
            topology=spec,
        )
        # Fault-free: nothing is lost, the scheduled sizes cover the
        # workload exactly, and relay hops only ever delay a chunk.
        assert not any(r.lost for r in result.records)
        assert sum(r.size for r in result.records) == pytest.approx(work, rel=1e-7)
        assert all(r.arrival >= r.send_end for r in result.records)
        assert result.topology == str(make_topology(spec))

    @given(
        platform=small_platforms,
        work=st.floats(min_value=50.0, max_value=2000.0, **finite),
        seed=seeds(),
        cap=st.floats(min_value=0.5, max_value=4.0, **finite),
    )
    @settings(max_examples=20)
    def test_shared_bandwidth_conserves_work(self, platform, work, seed, cap):
        result = simulate(
            platform,
            work,
            Factoring(),
            NormalErrorModel(0.2),
            seed=seed,
            topology=f"sharedbw:cap={cap}",
        )
        assert not any(r.lost for r in result.records)
        assert sum(r.size for r in result.records) == pytest.approx(work, rel=1e-7)
