"""Property-based tests (hypothesis) for fault injection and recovery.

Three invariant families:

* **work conservation** — whatever the crash pattern, delivered plus
  lost-then-redispatched work accounts for the full workload: recovery
  schedulers deliver exactly ``W_total`` as long as one worker survives,
  and every scheduler satisfies ``delivered + lost == dispatched``;
* **no post-crash dispatch** — once a worker's crash is observable, a
  recovery scheduler never targets it (the t=0 case: the dead worker
  receives nothing, ever);
* **monotone degradation** — for *static* plans the fault arithmetic is
  provably monotone: an earlier crash loses weakly more work, a longer
  pause weakly delays the makespan.  (Pointwise monotonicity is *not*
  asserted for the adaptive schedulers: their heuristics are not monotone
  in the worker count, so an earlier crash occasionally yields a luckier
  re-plan — a real property of the algorithms, not a simulator artifact.)
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import RUMR, UMR, EqualSplit, Factoring, MultiInstallment, WeightedFactoring
from repro.errors import NoError, NormalErrorModel
from repro.sim import simulate, validate_schedule
from tests.properties.strategies import (
    finite,
    homogeneous_platforms,
    seeds as make_seeds,
    workloads as make_workloads,
)

pytestmark = pytest.mark.property

platforms = homogeneous_platforms(
    min_workers=2, max_workers=12, min_factor=1.1, max_factor=2.5,
    max_latency=0.6, with_tlat=False,
)

workloads = make_workloads(min_work=50.0, max_work=2000.0)
crash_times = st.floats(min_value=0.0, max_value=300.0, **finite)
seeds = make_seeds(2**31 - 1)

RECOVERY = [
    ("Factoring", lambda: Factoring()),
    ("RUMR", lambda: RUMR(known_error=0.2)),
    ("WeightedFactoring", lambda: WeightedFactoring()),
]
STATIC = [
    ("UMR", lambda: UMR()),
    ("EqualSplit", lambda: EqualSplit()),
    ("MI-2", lambda: MultiInstallment(2)),
]


class TestWorkConservation:
    @given(platform=platforms, work=workloads, at=crash_times, seed=seeds)
    def test_recovery_delivers_everything(self, platform, work, at, seed):
        # One worker crashes; the survivors must absorb its share exactly.
        worker = seed % platform.N
        for _, make in RECOVERY:
            result = simulate(
                platform, work, make(), NormalErrorModel(0.2), seed=seed,
                engine="fast", faults=f"crash:worker={worker},at={at}",
            )
            assert result.delivered_work == pytest.approx(work, rel=1e-9)
            lost = sum(r.size for r in result.records if r.lost)
            assert result.delivered_work + lost == pytest.approx(
                result.dispatched_work, rel=1e-9
            )
            validate_schedule(result)

    @given(platform=platforms, work=workloads, seed=seeds)
    def test_accounting_identity_under_random_crashes(self, platform, work, seed):
        # Static schedulers lose work but the ledger still balances.
        for _, make in STATIC:
            result = simulate(
                platform, work, make(), NoError(), seed=seed, engine="fast",
                faults="crash:p=0.5,tmax=100",
            )
            lost = sum(r.size for r in result.records if r.lost)
            assert lost == pytest.approx(result.work_lost, rel=1e-12, abs=1e-9)
            assert result.delivered_work + result.work_lost == pytest.approx(
                result.dispatched_work, rel=1e-9
            )
            assert result.dispatched_work == pytest.approx(work, rel=1e-9)


class TestNoPostCrashDispatch:
    @given(platform=platforms, work=workloads, seed=seeds)
    def test_dead_from_start_receives_nothing(self, platform, work, seed):
        worker = seed % platform.N
        for _, make in RECOVERY:
            result = simulate(
                platform, work, make(), NoError(), seed=seed, engine="fast",
                faults=f"crash:worker={worker},at=0",
            )
            assert all(r.worker != worker for r in result.records)
            assert result.work_lost == 0.0

    @given(platform=platforms, work=workloads, at=crash_times, seed=seeds)
    def test_chunks_sent_after_crash_are_lost(self, platform, work, at, seed):
        # Loss-rule consistency: anything sent to the crashed worker after
        # its crash instant can never complete.
        worker = seed % platform.N
        for _, make in RECOVERY + STATIC:
            result = simulate(
                platform, work, make(), NoError(), seed=seed, engine="fast",
                faults=f"crash:worker={worker},at={at}",
            )
            for r in result.records:
                if r.worker == worker and r.send_start > at:
                    assert r.lost


class TestMonotoneDegradation:
    @given(platform=platforms, work=workloads, seed=seeds,
           t1=crash_times, t2=crash_times)
    def test_earlier_crash_loses_more_static(self, platform, work, seed, t1, t2):
        t_early, t_late = min(t1, t2), max(t1, t2)
        worker = seed % platform.N
        for _, make in STATIC:
            def lost_at(t):
                return simulate(
                    platform, work, make(), NormalErrorModel(0.3), seed=seed,
                    engine="fast", faults=f"crash:worker={worker},at={t}",
                ).work_lost
            assert lost_at(t_early) >= lost_at(t_late) - 1e-9

    @given(platform=platforms, work=workloads, seed=seeds,
           d1=st.floats(min_value=0.0, max_value=60.0, **finite),
           d2=st.floats(min_value=0.0, max_value=60.0, **finite))
    def test_longer_pause_never_faster_static(self, platform, work, seed, d1, d2):
        d_short, d_long = min(d1, d2), max(d1, d2)
        for _, make in STATIC:
            def makespan_with(d):
                return simulate(
                    platform, work, make(), NormalErrorModel(0.3), seed=seed,
                    engine="fast", faults=f"pause:p=1,tmax=0,dur={d}",
                ).makespan
            assert makespan_with(d_long) >= makespan_with(d_short) - 1e-9


class TestSampleBatchIdentity:
    """``FaultModel.sample_batch`` must equal looping ``sample``, bitwise.

    The batch engines realize fault schedules through the plane; any
    drift from the scalar draw order (hit test then onset, worker 0..n-1,
    third spawned stream) would silently change every fault sweep.
    """

    @staticmethod
    def _assert_row_identical(model, platform, plane, r, seed):
        import numpy as np

        from repro.errors.faults import fault_stream

        rng = fault_stream(seed)
        ref = model.sample(platform, rng)
        got = plane.schedule(r)
        # Bit-level equality: view every float through its u64 pattern so
        # -0.0 vs 0.0 or ULP drift cannot hide behind float ==.
        for a, b in (
            (got.crash_times, ref.crash_times),
            (got.pauses, ref.pauses),
            (got.slowdowns, ref.slowdowns),
            ((got.spike_prob, got.spike_delay), (ref.spike_prob, ref.spike_delay)),
        ):
            av = np.asarray(a, dtype=np.float64).view(np.uint64)
            bv = np.asarray(b, dtype=np.float64).view(np.uint64)
            assert np.array_equal(av, bv), (a, b)
        assert bool(plane.fault_row[r]) == ref.any_faults
        if ref.any_faults and ref.spike_prob > 0.0:
            # The retained generator must sit exactly where the scalar
            # stream sits after sampling: the next draws coincide.
            assert plane.rngs[r] is not None
            assert np.array_equal(plane.rngs[r].random(4), rng.random(4))
        else:
            assert plane.rngs[r] is None

    @given(
        platform=platforms,
        seed0=seeds,
        count=st.integers(min_value=1, max_value=7),
        kind=st.sampled_from(["crash", "pause", "slow", "spike", "none", "det"]),
        p=st.floats(min_value=0.0, max_value=1.0, **finite),
        tmax=st.floats(min_value=0.0, max_value=200.0, **finite),
        mag=st.floats(min_value=0.0, max_value=50.0, **finite),
    )
    def test_batch_matches_scalar_all_kinds(
        self, platform, seed0, count, kind, p, tmax, mag
    ):
        from repro.errors.faults import make_fault_model

        if kind == "crash":
            spec = f"crash:p={p},tmax={tmax}"
        elif kind == "pause":
            spec = f"pause:p={p},tmax={tmax},dur={mag}"
        elif kind == "slow":
            spec = f"slow:p={p},tmax={tmax},factor={1.0 + mag}"
        elif kind == "spike":
            spec = f"spike:p={p},delay={mag}"
        elif kind == "det":
            spec = f"crash:worker={seed0 % platform.N},at={tmax}"
        else:
            spec = "none"
        model = make_fault_model(spec)
        seed_list = [seed0 + i for i in range(count)]
        plane = model.sample_batch(platform, seed_list)
        assert plane.num_rows == count
        assert plane.num_workers == platform.N
        for r, seed in enumerate(seed_list):
            self._assert_row_identical(model, platform, plane, r, seed)

    @given(platform=platforms, seed0=seeds,
           count=st.integers(min_value=1, max_value=5))
    def test_default_loop_covers_mixed_models(self, platform, seed0, count):
        # A third-party model mixing kinds in one schedule rides the base
        # sample_batch loop; the identity must hold there too (including
        # the retained spike generator's position after the crash draws).
        import dataclasses as _dc

        from repro.errors.faults import CrashFaults, FaultModel

        class CrashPlusSpike(FaultModel):
            def sample(self, platform, rng):
                s = CrashFaults(prob=0.4, tmax=60.0).sample(platform, rng)
                return _dc.replace(s, spike_prob=0.3, spike_delay=2.5)

        model = CrashPlusSpike()
        seed_list = [seed0 + i for i in range(count)]
        plane = model.sample_batch(platform, seed_list)
        for r, seed in enumerate(seed_list):
            self._assert_row_identical(model, platform, plane, r, seed)
