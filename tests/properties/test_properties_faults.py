"""Property-based tests (hypothesis) for fault injection and recovery.

Three invariant families:

* **work conservation** — whatever the crash pattern, delivered plus
  lost-then-redispatched work accounts for the full workload: recovery
  schedulers deliver exactly ``W_total`` as long as one worker survives,
  and every scheduler satisfies ``delivered + lost == dispatched``;
* **no post-crash dispatch** — once a worker's crash is observable, a
  recovery scheduler never targets it (the t=0 case: the dead worker
  receives nothing, ever);
* **monotone degradation** — for *static* plans the fault arithmetic is
  provably monotone: an earlier crash loses weakly more work, a longer
  pause weakly delays the makespan.  (Pointwise monotonicity is *not*
  asserted for the adaptive schedulers: their heuristics are not monotone
  in the worker count, so an earlier crash occasionally yields a luckier
  re-plan — a real property of the algorithms, not a simulator artifact.)
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import RUMR, UMR, EqualSplit, Factoring, MultiInstallment, WeightedFactoring
from repro.errors import NoError, NormalErrorModel
from repro.sim import simulate, validate_schedule
from tests.properties.strategies import (
    finite,
    homogeneous_platforms,
    seeds as make_seeds,
    workloads as make_workloads,
)

pytestmark = pytest.mark.property

platforms = homogeneous_platforms(
    min_workers=2, max_workers=12, min_factor=1.1, max_factor=2.5,
    max_latency=0.6, with_tlat=False,
)

workloads = make_workloads(min_work=50.0, max_work=2000.0)
crash_times = st.floats(min_value=0.0, max_value=300.0, **finite)
seeds = make_seeds(2**31 - 1)

RECOVERY = [
    ("Factoring", lambda: Factoring()),
    ("RUMR", lambda: RUMR(known_error=0.2)),
    ("WeightedFactoring", lambda: WeightedFactoring()),
]
STATIC = [
    ("UMR", lambda: UMR()),
    ("EqualSplit", lambda: EqualSplit()),
    ("MI-2", lambda: MultiInstallment(2)),
]


class TestWorkConservation:
    @given(platform=platforms, work=workloads, at=crash_times, seed=seeds)
    def test_recovery_delivers_everything(self, platform, work, at, seed):
        # One worker crashes; the survivors must absorb its share exactly.
        worker = seed % platform.N
        for _, make in RECOVERY:
            result = simulate(
                platform, work, make(), NormalErrorModel(0.2), seed=seed,
                engine="fast", faults=f"crash:worker={worker},at={at}",
            )
            assert result.delivered_work == pytest.approx(work, rel=1e-9)
            lost = sum(r.size for r in result.records if r.lost)
            assert result.delivered_work + lost == pytest.approx(
                result.dispatched_work, rel=1e-9
            )
            validate_schedule(result)

    @given(platform=platforms, work=workloads, seed=seeds)
    def test_accounting_identity_under_random_crashes(self, platform, work, seed):
        # Static schedulers lose work but the ledger still balances.
        for _, make in STATIC:
            result = simulate(
                platform, work, make(), NoError(), seed=seed, engine="fast",
                faults="crash:p=0.5,tmax=100",
            )
            lost = sum(r.size for r in result.records if r.lost)
            assert lost == pytest.approx(result.work_lost, rel=1e-12, abs=1e-9)
            assert result.delivered_work + result.work_lost == pytest.approx(
                result.dispatched_work, rel=1e-9
            )
            assert result.dispatched_work == pytest.approx(work, rel=1e-9)


class TestNoPostCrashDispatch:
    @given(platform=platforms, work=workloads, seed=seeds)
    def test_dead_from_start_receives_nothing(self, platform, work, seed):
        worker = seed % platform.N
        for _, make in RECOVERY:
            result = simulate(
                platform, work, make(), NoError(), seed=seed, engine="fast",
                faults=f"crash:worker={worker},at=0",
            )
            assert all(r.worker != worker for r in result.records)
            assert result.work_lost == 0.0

    @given(platform=platforms, work=workloads, at=crash_times, seed=seeds)
    def test_chunks_sent_after_crash_are_lost(self, platform, work, at, seed):
        # Loss-rule consistency: anything sent to the crashed worker after
        # its crash instant can never complete.
        worker = seed % platform.N
        for _, make in RECOVERY + STATIC:
            result = simulate(
                platform, work, make(), NoError(), seed=seed, engine="fast",
                faults=f"crash:worker={worker},at={at}",
            )
            for r in result.records:
                if r.worker == worker and r.send_start > at:
                    assert r.lost


class TestMonotoneDegradation:
    @given(platform=platforms, work=workloads, seed=seeds,
           t1=crash_times, t2=crash_times)
    def test_earlier_crash_loses_more_static(self, platform, work, seed, t1, t2):
        t_early, t_late = min(t1, t2), max(t1, t2)
        worker = seed % platform.N
        for _, make in STATIC:
            def lost_at(t):
                return simulate(
                    platform, work, make(), NormalErrorModel(0.3), seed=seed,
                    engine="fast", faults=f"crash:worker={worker},at={t}",
                ).work_lost
            assert lost_at(t_early) >= lost_at(t_late) - 1e-9

    @given(platform=platforms, work=workloads, seed=seeds,
           d1=st.floats(min_value=0.0, max_value=60.0, **finite),
           d2=st.floats(min_value=0.0, max_value=60.0, **finite))
    def test_longer_pause_never_faster_static(self, platform, work, seed, d1, d2):
        d_short, d_long = min(d1, d2), max(d1, d2)
        for _, make in STATIC:
            def makespan_with(d):
                return simulate(
                    platform, work, make(), NormalErrorModel(0.3), seed=seed,
                    engine="fast", faults=f"pause:p=1,tmax=0,dur={d}",
                ).makespan
            assert makespan_with(d_long) >= makespan_with(d_short) - 1e-9
