"""Property-based tests of the batch/scalar engine equivalence contract.

The batch engine promises (see ``repro.sim.batch``): exact equality with
the scalar engine at zero error, positive finite makespans always, and
monotonicity in total work for a fixed plan shape.  Hypothesis drives
these over arbitrary static plans — both registry schedulers and ad-hoc
dispatch sequences that no registry algorithm would emit.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import UMR, MultiInstallment, OneRound
from repro.core.base import Dispatch, Scheduler, StaticPlanSource
from repro.core.chunks import ChunkPlan, PlannedChunk
from repro.errors import NoError, make_error_model
from repro.sim.batch import compile_static_plan, simulate_static_batch
from repro.sim.fastsim import simulate_fast
from tests.properties.strategies import finite, homogeneous_platforms, workloads as make_workloads

pytestmark = pytest.mark.property

platforms = homogeneous_platforms(max_workers=12)

workloads = make_workloads(max_work=5000.0)

static_schedulers = st.sampled_from([UMR, OneRound]) | st.integers(
    min_value=1, max_value=4
).map(lambda m: lambda: MultiInstallment(m))


def arbitrary_plans(num_workers: int):
    """Ad-hoc static plans: any sequence of (worker, size) chunks."""
    chunk = st.tuples(
        st.integers(min_value=0, max_value=num_workers - 1),
        st.floats(min_value=0.01, max_value=100.0, **finite),
    )
    return st.lists(chunk, min_size=1, max_size=40).map(
        lambda pairs: ChunkPlan(
            PlannedChunk(worker=w, size=s, round_index=0) for w, s in pairs
        )
    )


class _PlanScheduler(Scheduler):
    """Replay a fixed ChunkPlan through the scalar engine."""

    name = "plan-replay"
    is_static = True

    def __init__(self, plan: ChunkPlan):
        self._plan = plan

    def static_plan(self, platform, total_work):
        return self._plan

    def create_source(self, platform, total_work):
        return StaticPlanSource(
            Dispatch(worker=c.worker, size=c.size) for c in self._plan
        )


class TestBatchScalarEquivalence:
    @given(platform=platforms, work=workloads, factory=static_schedulers)
    def test_exact_at_zero_error(self, platform, work, factory):
        scheduler = factory()
        plan = scheduler.static_plan(platform, work)
        scalar = simulate_fast(platform, work, scheduler, NoError(), seed=0)
        batch = simulate_static_batch(platform, plan, 0.0, [0, 1, 2])
        assert batch.shape == (3,)
        assert np.all(batch == scalar.makespan)

    @given(
        platform=platforms,
        data=st.data(),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_arbitrary_plan_exact_at_zero_error(self, platform, data, seed):
        plan = data.draw(arbitrary_plans(platform.N))
        scheduler = _PlanScheduler(plan)
        work = plan.total_work
        scalar = simulate_fast(platform, work, scheduler, NoError(), seed=seed)
        batch = simulate_static_batch(platform, plan, 0.0, [seed])
        assert batch[0] == scalar.makespan

    @given(
        platform=platforms,
        data=st.data(),
        error=st.floats(min_value=0.01, max_value=0.25, **finite),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_arbitrary_plan_matches_scalar_under_error(
        self, platform, data, error, seed
    ):
        # Bitwise equality holds whenever no truncation resample fires —
        # overwhelmingly likely at these magnitudes — so a loose relative
        # bound covering the rare resampled case never trips.
        plan = data.draw(arbitrary_plans(platform.N))
        scheduler = _PlanScheduler(plan)
        model = make_error_model("normal", error)
        scalar = simulate_fast(
            platform, plan.total_work, scheduler, model, seed=seed
        )
        batch = simulate_static_batch(platform, plan, error, [seed])
        assert batch[0] == pytest.approx(scalar.makespan, rel=0.2)


class TestBatchInvariants:
    @given(
        platform=platforms,
        data=st.data(),
        error=st.floats(min_value=0.0, max_value=0.5, **finite),
    )
    def test_makespans_positive_finite(self, platform, data, error):
        plan = data.draw(arbitrary_plans(platform.N))
        out = simulate_static_batch(platform, plan, error, [0, 1, 2, 3])
        assert out.shape == (4,)
        assert np.all(np.isfinite(out))
        assert np.all(out > 0.0)

    @given(
        platform=platforms,
        data=st.data(),
        scale=st.floats(min_value=1.0, max_value=10.0, **finite),
    )
    def test_monotone_in_work(self, platform, data, scale):
        # Scaling every chunk up by a common factor cannot shrink the
        # makespan (link times, compute times and queueing all grow).
        plan = data.draw(arbitrary_plans(platform.N))
        bigger = ChunkPlan(
            PlannedChunk(worker=c.worker, size=c.size * scale, round_index=0)
            for c in plan
        )
        base = simulate_static_batch(platform, plan, 0.0, [0])
        grown = simulate_static_batch(platform, bigger, 0.0, [0])
        assert grown[0] >= base[0]

    @given(platform=platforms, data=st.data())
    def test_compiled_plan_equals_chunk_plan(self, platform, data):
        plan = data.draw(arbitrary_plans(platform.N))
        compiled = compile_static_plan(platform, plan)
        a = simulate_static_batch(platform, plan, 0.0, [0])
        b = simulate_static_batch(platform, compiled, 0.0, [0])
        assert a[0] == b[0]
