"""Property-based tests of the lockstep dynamic batch engine contract.

The lockstep engine promises (see ``repro.sim.dynbatch``): bitwise
equality with the scalar engine at zero error for every batch-dynamic
scheduler, and distributional identity at nonzero error — bitwise
whenever no truncation resample fires, which at moderate magnitudes is
almost every run.  Hypothesis drives both over arbitrary homogeneous
platforms, workloads, and scheduler parameters, covering RUMR's phase 1
(UMR rounds), its factoring phase 2, and the degenerate split where
phase 2 is skipped entirely.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.factoring import Factoring
from repro.core.rumr import RUMR, phase2_workload
from repro.core.weighted_factoring import WeightedFactoring
from repro.errors import make_error_model
from repro.errors.faults import make_fault_model
from repro.platform import homogeneous_platform
from repro.sim.dynbatch import (
    BatchArena,
    DynamicCell,
    simulate_dynamic_batch,
    simulate_dynamic_cells,
)
from repro.sim.fastsim import simulate_fast
from tests.properties.strategies import finite, homogeneous_platforms, workloads as make_workloads

pytestmark = pytest.mark.property

platforms = homogeneous_platforms(max_workers=12)

# Crash properties pin worker 0's death, so someone else must survive.
crash_platforms = homogeneous_platforms(min_workers=2, max_workers=12)

workloads = make_workloads(min_work=50.0, max_work=5000.0)

# Factories taking the cell error, mirroring the registry contract.
# RUMR variants span in-order and out-of-order phase 1 and several
# phase-1 fractions (and hence both phase-2 shapes).
dynamic_schedulers = st.sampled_from(
    [
        lambda error: Factoring(),
        lambda error: Factoring(factor=1.5, min_chunk=0.5),
        lambda error: WeightedFactoring(),
        lambda error: RUMR(known_error=error),
        lambda error: RUMR(known_error=error, out_of_order=False),
        lambda error: RUMR(known_error=error, phase1_fraction=0.7),
    ]
)


def scalar_makespan(platform, work, scheduler, error, seed):
    model = make_error_model("normal", error)
    return simulate_fast(
        platform, work, scheduler, model, seed=seed, collect_records=False
    ).makespan


class TestLockstepScalarEquivalence:
    @settings(deadline=None)
    @given(
        platform=platforms,
        work=workloads,
        factory=dynamic_schedulers,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_bitwise_equal_at_zero_error(self, platform, work, factory, seed):
        scheduler = factory(0.0)
        scalar = scalar_makespan(platform, work, scheduler, 0.0, seed)
        batch = simulate_dynamic_batch(platform, scheduler, work, 0.0, [seed, seed + 1])
        assert batch.shape == (2,)
        assert batch[0] == scalar

    @settings(deadline=None)
    @given(
        platform=platforms,
        work=workloads,
        factory=dynamic_schedulers,
        error=st.floats(min_value=0.01, max_value=0.25, **finite),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_matches_scalar_under_error(self, platform, work, factory, error, seed):
        # Bitwise equality holds whenever no truncation resample fires and
        # no link is free of charge — overwhelmingly likely here — so a
        # loose relative bound covering the rare divergent case never
        # trips.
        scheduler = factory(error)
        scalar = scalar_makespan(platform, work, scheduler, error, seed)
        batch = simulate_dynamic_batch(platform, scheduler, work, error, [seed])
        assert batch[0] == pytest.approx(scalar, rel=0.2)


class TestRUMRPhaseCoverage:
    def test_phase2_skip_condition_bitwise_equal(self):
        # A tiny error estimate drives the phase-2 workload below the
        # per-worker overhead threshold, so the split degenerates to
        # w2 = 0 and RUMR runs phase 1 only.  The lockstep engine must
        # reproduce that trajectory exactly.
        platform = homogeneous_platform(
            10, S=1.0, bandwidth_factor=1.4, cLat=0.2, nLat=0.1
        )
        work, error = 1000.0, 0.01
        assert phase2_workload(platform, work, error) == 0.0
        scheduler = RUMR(known_error=error)
        seeds = [3, 4, 5]
        scalar = np.array(
            [scalar_makespan(platform, work, scheduler, error, s) for s in seeds]
        )
        batch = simulate_dynamic_batch(platform, scheduler, work, error, seeds)
        assert np.array_equal(scalar, batch)

    def test_phase2_active_condition_bitwise_equal(self):
        # At a large error estimate the same platform keeps a nonzero
        # phase-2 workload, exercising the factoring tail of the kernel.
        platform = homogeneous_platform(
            10, S=1.0, bandwidth_factor=1.4, cLat=0.2, nLat=0.1
        )
        # 0.1 keeps w2 > 0 while the truncation floor stays ~9 sigma away,
        # so no resample can realistically fire and bitwise equality holds.
        work, error = 1000.0, 0.1
        assert phase2_workload(platform, work, error) > 0.0
        scheduler = RUMR(known_error=error)
        seeds = [3, 4, 5]
        scalar = np.array(
            [scalar_makespan(platform, work, scheduler, error, s) for s in seeds]
        )
        batch = simulate_dynamic_batch(platform, scheduler, work, error, seeds)
        assert np.array_equal(scalar, batch)


class TestGridPassContract:
    """Properties of the whole-grid lockstep pass (PR 6).

    The runner merges every (platform, error) cell of a sweep into one
    ``simulate_dynamic_cells`` call drawing state from a shared
    :class:`BatchArena`.  Its resilience ladder degrades a failed merged
    pass to per-cell calls, and its arena is reused across sweeps — both
    are only sound if merging and arena reuse never change a single bit.
    """

    @settings(deadline=None, max_examples=25)
    @given(
        platform=platforms,
        work=workloads,
        factories=st.lists(dynamic_schedulers, min_size=2, max_size=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_merged_pass_bitwise_equals_per_cell(self, platform, work,
                                                 factories, seed):
        cells = [
            DynamicCell(
                platform=platform,
                scheduler=factory(0.0),
                total_work=work,
                error=0.0,
                seeds=(seed, seed + 1),
            )
            for factory in factories
        ]
        merged = simulate_dynamic_cells(cells)
        solo = [simulate_dynamic_cells([cell])[0] for cell in cells]
        for m, s in zip(merged, solo):
            assert np.array_equal(m, s)

    @settings(deadline=None, max_examples=25)
    @given(
        platform=platforms,
        work=workloads,
        factory=dynamic_schedulers,
        error=st.floats(min_value=0.0, max_value=0.2, **finite),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_arena_reuse_is_pure(self, platform, work, factory, error, seed):
        # The sweep runner funnels every merged pass through one grow-only
        # arena; stale state leaking between takes would poison later
        # sweeps.  A reused arena must reproduce a fresh run bit for bit.
        cells = [
            DynamicCell(
                platform=platform,
                scheduler=factory(error),
                total_work=work,
                error=error,
                seeds=(seed, seed + 1),
            )
        ]
        arena = BatchArena()
        fresh = simulate_dynamic_cells(cells, arena=arena)
        reused = simulate_dynamic_cells(cells, arena=arena)
        unshared = simulate_dynamic_cells(cells)
        assert np.array_equal(fresh[0], reused[0])
        assert np.array_equal(fresh[0], unshared[0])


class TestBatchedFaultProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        platform=crash_platforms,
        work=workloads,
        factory=dynamic_schedulers,
        at=st.floats(min_value=1.0, max_value=200.0, **finite),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_work_conservation_under_faults(self, platform, work, factory,
                                            at, seed):
        """A crashed worker's lost chunks are re-dispatched to survivors —
        no work vanishes — and the lockstep engine reproduces the scalar
        fault trajectory bitwise at error 0."""
        scheduler = factory(0.0)
        faults = make_fault_model(f"crash:worker=0,at={at!r}")
        model = make_error_model("normal", 0.0)
        result = simulate_fast(
            platform, work, scheduler, model, seed=seed, faults=faults
        )
        lost = sum(r.size for r in result.records if r.lost)
        # Dynamic schedulers observe every loss and re-cover it from the
        # surviving workers: delivered work conserves the full workload.
        assert result.delivered_work == pytest.approx(work)
        assert result.work_lost == pytest.approx(lost)
        batch = simulate_dynamic_batch(
            platform, scheduler, work, 0.0, [seed], faults=faults
        )
        assert batch[0] == result.makespan


class TestStatisticalConsistency:
    def test_mean_makespan_matches_at_large_error(self):
        # At error = 0.3 truncation resampling interleaves differently
        # between the engines, so individual seeds may diverge — but the
        # paired means over many seeds must agree tightly.
        platform = homogeneous_platform(
            8, S=1.0, bandwidth_factor=1.8, cLat=0.2, nLat=0.1
        )
        work, error = 1000.0, 0.3
        seeds = list(range(200))
        for scheduler in (Factoring(), RUMR(known_error=error)):
            scalar = np.array(
                [scalar_makespan(platform, work, scheduler, error, s) for s in seeds]
            )
            batch = simulate_dynamic_batch(platform, scheduler, work, error, seeds)
            assert batch.mean() == pytest.approx(scalar.mean(), rel=2e-3)
            assert np.mean(scalar == batch) > 0.5
