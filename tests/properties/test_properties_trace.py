"""Property-based tests: every emitted event stream is well-formed.

The trace is the test oracle (the differential harness compares streams
event-for-event), so the stream itself needs invariants of its own:

* **balanced pairs** — every ``dispatch_start`` has exactly one
  ``dispatch_end`` for the same chunk, every ``comp_start`` a
  ``comp_end``, and start never follows end;
* **per-worker monotonicity** — one worker computes one chunk at a time,
  so its interleaved ``comp_start``/``comp_end`` sequence is
  non-decreasing in time and strictly alternating;
* **no dispatch after observed crash** — once a recovery-aware scheduler
  emits ``recovery_decision`` for a worker, no later ``dispatch_start``
  targets that worker;
* **makespan agreement** — the max ``comp_end`` timestamp equals
  ``SimResult.makespan`` bitwise (fault-free runs: every chunk is
  delivered).

These hold for *any* platform/scheduler/error/fault draw — Hypothesis
drives them over the shared Table-1-and-beyond strategies.
"""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RUMR, UMR, Factoring, MultiInstallment, WeightedFactoring
from repro.errors import NoError, NormalErrorModel
from repro.obs import Tracer, canonical_order
from repro.sim import simulate
from tests.properties.strategies import (
    finite,
    homogeneous_platforms,
    seeds as make_seeds,
    workloads as make_workloads,
)

pytestmark = pytest.mark.property

platforms = homogeneous_platforms(max_workers=12)
workloads = make_workloads(min_work=10.0, max_work=2000.0)
seeds = make_seeds()

schedulers = st.sampled_from(
    [
        lambda: UMR(),
        lambda: RUMR(known_error=0.3),
        lambda: Factoring(),
        lambda: WeightedFactoring(),
        lambda: MultiInstallment(2),
    ]
)


def traced(platform, work, scheduler, model, seed, faults=None, engine="fast"):
    tracer = Tracer()
    result = simulate(
        platform, work, scheduler, model, seed=seed, engine=engine,
        faults=faults, tracer=tracer,
    )
    return result, tracer.canonical()


def assert_balanced_pairs(events):
    for start_kind, end_kind in (
        ("dispatch_start", "dispatch_end"),
        ("comp_start", "comp_end"),
    ):
        open_chunks: set[tuple[int, int]] = set()
        counts: collections.Counter = collections.Counter()
        for e in events:
            key = (e.worker, e.chunk)
            if e.kind == start_kind:
                assert key not in open_chunks, f"double {start_kind} for {key}"
                open_chunks.add(key)
                counts[key] += 1
            elif e.kind == end_kind:
                assert key in open_chunks, f"{end_kind} without {start_kind} for {key}"
                open_chunks.remove(key)
        assert not open_chunks, f"unclosed {start_kind} events: {open_chunks}"
        assert all(c == 1 for c in counts.values())


def assert_worker_monotone(events):
    last_time: dict[int, float] = {}
    expect_start: dict[int, bool] = {}
    for e in events:
        if e.kind not in ("comp_start", "comp_end"):
            continue
        prev = last_time.get(e.worker)
        if prev is not None:
            assert e.time >= prev, (
                f"worker {e.worker} time went backwards: {prev} -> {e.time}"
            )
        last_time[e.worker] = e.time
        starting = e.kind == "comp_start"
        assert expect_start.get(e.worker, True) == starting, (
            f"worker {e.worker} compute events do not alternate"
        )
        expect_start[e.worker] = not starting
    assert all(v for v in expect_start.values()), "worker left mid-computation"


class TestStreamWellFormed:
    @given(
        platform=platforms, work=workloads, factory=schedulers,
        error=st.floats(min_value=0.0, max_value=0.5, **finite), seed=seeds,
    )
    @settings(max_examples=40)
    def test_pairs_and_monotonicity(self, platform, work, factory, error, seed):
        model = NormalErrorModel(error) if error else NoError()
        _, events = traced(platform, work, factory(), model, seed)
        assert events == canonical_order(events)
        assert_balanced_pairs(events)
        assert_worker_monotone(events)

    @given(
        platform=platforms, work=workloads, factory=schedulers, seed=seeds,
        crash_at=st.floats(min_value=0.0, max_value=200.0, **finite),
    )
    @settings(max_examples=30)
    def test_pairs_hold_under_faults(self, platform, work, factory, seed, crash_at):
        worker = seed % platform.N
        _, events = traced(
            platform, work, factory(), NoError(), seed,
            faults=f"crash:worker={worker},at={crash_at}",
        )
        assert_balanced_pairs(events)
        assert_worker_monotone(events)
        assert any(e.kind == "fault" and e.detail == "crash" for e in events)

    @given(platform=platforms, work=workloads, seed=seeds,
           crash_at=st.floats(min_value=0.0, max_value=200.0, **finite))
    @settings(max_examples=30)
    def test_no_dispatch_after_crash_observed(self, platform, work, seed, crash_at):
        # Once the recovery decision for a worker is on the stream, that
        # worker never appears in another dispatch_start.
        worker = seed % platform.N
        for factory in (lambda: Factoring(), lambda: RUMR(known_error=0.2)):
            _, events = traced(
                platform, work, factory(), NoError(), seed,
                faults=f"crash:worker={worker},at={crash_at}",
            )
            observed_at: dict[int, float] = {}
            for e in events:
                if e.kind == "recovery_decision":
                    observed_at.setdefault(e.worker, e.time)
                elif e.kind == "dispatch_start" and e.worker in observed_at:
                    pytest.fail(
                        f"dispatch_start to worker {e.worker} at t={e.time} after "
                        f"its crash was observed at t={observed_at[e.worker]}"
                    )

    @given(
        platform=platforms, work=workloads, factory=schedulers,
        error=st.floats(min_value=0.0, max_value=0.5, **finite), seed=seeds,
    )
    @settings(max_examples=40)
    def test_event_makespan_equals_result(self, platform, work, factory, error, seed):
        # Fault-free: every chunk is delivered, so the last comp_end IS
        # the makespan — bitwise, no tolerance.
        model = NormalErrorModel(error) if error else NoError()
        result, events = traced(platform, work, factory(), model, seed)
        comp_ends = [e.time for e in events if e.kind == "comp_end"]
        assert comp_ends, "no computation happened"
        assert max(comp_ends) == result.makespan

    @given(platform=platforms, work=workloads, seed=seeds)
    @settings(max_examples=15)
    def test_des_streams_equally_well_formed(self, platform, work, seed):
        _, events = traced(
            platform, work, RUMR(known_error=0.3), NormalErrorModel(0.3),
            seed, engine="des",
        )
        assert_balanced_pairs(events)
        assert_worker_monotone(events)
