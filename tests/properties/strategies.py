"""Shared Hypothesis strategies for the property-test suite.

Every ``test_properties*`` module used to carry its own copy of the
platform/workload strategies, and the copies had quietly drifted (worker
ranges, latency caps, presence of ``tLat``).  This module is the single
source: strategy *factories* parameterised by the ranges a module needs,
plus ready-made defaults covering (and exceeding) the paper's Table 1 —
including degenerate corners: zero latencies, tiny workloads, single
workers, heterogeneous rates.

Factories return fresh strategies, so callers can narrow ranges without
affecting anyone else::

    from tests.properties.strategies import homogeneous_platforms, workloads

    platforms = homogeneous_platforms(max_workers=12)

    @given(platform=platforms, work=workloads())
    def test_something(platform, work): ...
"""

from hypothesis import strategies as st

from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform

__all__ = [
    "finite",
    "latencies",
    "homogeneous_platforms",
    "worker_specs",
    "hetero_platforms",
    "workloads",
    "seeds",
    "error_magnitudes",
]

# Keyword bundle for st.floats: simulator inputs are always finite.
finite = dict(allow_nan=False, allow_infinity=False)

#: Per-chunk latencies (cLat / nLat), including the zero corner.
latencies = st.floats(min_value=0.0, max_value=1.0, **finite)


def homogeneous_platforms(
    min_workers: int = 1,
    max_workers: int = 30,
    min_factor: float = 1.05,
    max_factor: float = 3.0,
    max_latency: float = 1.0,
    with_tlat: bool = True,
):
    """Homogeneous platforms over (and beyond) the Table-1 ranges.

    ``bandwidth_factor`` stays above 1 so the single-port master link is
    never the trivially-saturated bottleneck; ``with_tlat=False`` drops
    the fixed per-transfer latency for modules that do not model it.
    """
    lat = st.floats(min_value=0.0, max_value=max_latency, **finite)
    tlat = (
        st.floats(min_value=0.0, max_value=0.5, **finite)
        if with_tlat
        else st.just(0.0)
    )
    return st.builds(
        lambda n, factor, clat, nlat, tl: homogeneous_platform(
            n, S=1.0, bandwidth_factor=factor, cLat=clat, nLat=nlat, tLat=tl
        ),
        n=st.integers(min_value=min_workers, max_value=max_workers),
        factor=st.floats(min_value=min_factor, max_value=max_factor, **finite),
        clat=lat,
        nlat=lat,
        tl=tlat,
    )


#: Individual heterogeneous workers: rates, bandwidths and latencies all vary.
worker_specs = st.builds(
    WorkerSpec,
    S=st.floats(min_value=0.1, max_value=5.0, **finite),
    B=st.floats(min_value=5.0, max_value=200.0, **finite),
    cLat=latencies,
    nLat=latencies,
    tLat=st.floats(min_value=0.0, max_value=0.5, **finite),
)

#: Small heterogeneous platforms (1–8 workers, arbitrary specs).
hetero_platforms = st.lists(worker_specs, min_size=1, max_size=8).map(PlatformSpec)


def workloads(min_work: float = 1.0, max_work: float = 10000.0):
    """Total workloads W_total; defaults span tiny through Table-1 scale."""
    return st.floats(min_value=min_work, max_value=max_work, **finite)


def seeds(max_value: int = 2**31):
    """RNG seeds for the error/fault streams."""
    return st.integers(min_value=0, max_value=max_value)


def error_magnitudes(max_magnitude: float = 0.8):
    """Prediction-error magnitudes (the sweep's epsilon axis)."""
    return st.floats(min_value=0.0, max_value=max_magnitude, **finite)
