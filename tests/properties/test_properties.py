"""Property-based tests (hypothesis) on core invariants.

Strategies come from :mod:`tests.properties.strategies` and draw
platforms and workloads from ranges that cover (and exceed) the paper's
Table 1, including degenerate corners: zero latencies, tiny workloads,
single workers, heterogeneous rates, infeasible bandwidths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RUMR, UMR, Factoring, FixedSizeChunking, MultiInstallment
from repro.core.umr import solve_umr
from repro.errors import NormalErrorModel, NoError, UniformErrorModel
from repro.sim import simulate, validate_schedule
from repro.sim.analytic import analytic_makespan
from tests.properties.strategies import (
    finite,
    hetero_platforms,
    homogeneous_platforms,
    workloads as make_workloads,
)

pytestmark = pytest.mark.property

homog_platforms = homogeneous_platforms()
workloads = make_workloads()


class TestUMRProperties:
    @given(platform=homog_platforms, work=workloads)
    def test_plan_conserves_work(self, platform, work):
        plan = solve_umr(platform, work)
        assert plan.total_work == pytest.approx(work, rel=1e-7)

    @given(platform=homog_platforms, work=workloads)
    def test_chunks_nonnegative(self, platform, work):
        plan = solve_umr(platform, work)
        assert min(min(row) for row in plan.chunk_sizes) >= 0.0

    @given(platform=homog_platforms, work=workloads)
    def test_chunks_nondecreasing(self, platform, work):
        # UMR as published: round sizes never decrease (the solver rejects
        # decreasing-chunk solutions and falls back to fewer rounds).
        plan = solve_umr(platform, work)
        if plan.num_rounds >= 2:
            heads = [row[0] for row in plan.chunk_sizes[:-1]]
            tol = 1e-7 * (1 + max(abs(h) for h in heads))
            assert all(b >= a - tol for a, b in zip(heads, heads[1:]))

    @given(platform=homog_platforms, work=workloads)
    def test_allow_decreasing_never_worse(self, platform, work):
        # Lifting the restriction can only improve the model objective.
        restricted = solve_umr(platform, work)
        free = solve_umr(platform, work, allow_decreasing=True)
        assert free.predicted_makespan <= restricted.predicted_makespan * (1 + 1e-9)

    @given(platform=hetero_platforms, work=workloads)
    def test_heterogeneous_plans_valid(self, platform, work):
        plan = solve_umr(platform, work)
        assert plan.total_work == pytest.approx(work, rel=1e-7)
        assert min(min(row) for row in plan.chunk_sizes) >= 0.0

    @given(platform=homog_platforms, work=workloads)
    def test_predicted_equals_analytic_replay(self, platform, work):
        plan = solve_umr(platform, work)
        replayed = analytic_makespan(platform, plan.to_chunk_plan())
        # The replay can only be <= the model prediction if rounding freed
        # idle slack, and equal when the no-idle construction is exact.
        assert replayed <= plan.predicted_makespan * (1 + 1e-7)


class TestScheduleInvariants:
    @given(
        platform=homog_platforms,
        work=workloads,
        error=st.floats(min_value=0.0, max_value=0.8, **finite),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40)
    def test_rumr_schedules_always_valid(self, platform, work, error, seed):
        model = NormalErrorModel(error) if error else NoError()
        result = simulate(platform, work, RUMR(known_error=error), model, seed=seed)
        validate_schedule(result, rel_tol=1e-7)

    @given(
        platform=hetero_platforms,
        work=workloads,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30)
    def test_factoring_valid_on_heterogeneous(self, platform, work, seed):
        result = simulate(platform, work, Factoring(), NormalErrorModel(0.3), seed=seed)
        validate_schedule(result, rel_tol=1e-7)

    @given(platform=homog_platforms, work=workloads)
    @settings(max_examples=30)
    def test_mi_schedules_valid(self, platform, work):
        result = simulate(platform, work, MultiInstallment(3), NoError())
        validate_schedule(result, rel_tol=1e-7)

    @given(
        platform=homog_platforms,
        work=workloads,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30)
    def test_fsc_valid(self, platform, work, seed):
        result = simulate(
            platform, work, FixedSizeChunking(known_error=0.2), NormalErrorModel(0.2), seed=seed
        )
        validate_schedule(result, rel_tol=1e-7)


class TestEngineEquivalenceProperty:
    @given(
        platform=homog_platforms,
        work=st.floats(min_value=10.0, max_value=2000.0, **finite),
        error=st.floats(min_value=0.0, max_value=0.5, **finite),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25)
    def test_fast_equals_des(self, platform, work, error, seed):
        model = NormalErrorModel(error) if error else NoError()
        sched = RUMR(known_error=error)
        fast = simulate(platform, work, sched, model, seed=seed, engine="fast")
        des = simulate(platform, work, sched, model, seed=seed, engine="des")
        assert fast.makespan == des.makespan
        assert [r.worker for r in fast.records] == [r.worker for r in des.records]

    @given(
        platform=hetero_platforms,
        work=st.floats(min_value=10.0, max_value=2000.0, **finite),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15)
    def test_fast_equals_des_extension_schedulers(self, platform, work, seed):
        from repro.core import AdaptiveRUMR, WeightedFactoring

        model = NormalErrorModel(0.3)
        for sched_factory in (AdaptiveRUMR, WeightedFactoring):
            fast = simulate(
                platform, work, sched_factory(), model, seed=seed, engine="fast"
            )
            des = simulate(
                platform, work, sched_factory(), model, seed=seed, engine="des"
            )
            assert fast.makespan == des.makespan
            assert fast.records == des.records


class TestOutputEngineProperty:
    @given(
        platform=homog_platforms,
        work=st.floats(min_value=10.0, max_value=1000.0, **finite),
        error=st.floats(min_value=0.0, max_value=0.4, **finite),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15)
    def test_zero_output_ratio_equals_standard_engines(self, platform, work, error, seed):
        from repro.sim.output import simulate_with_output

        model = NormalErrorModel(error) if error else NoError()
        scalar = simulate(platform, work, RUMR(known_error=error), model, seed=seed)
        model2 = NormalErrorModel(error) if error else NoError()
        output = simulate_with_output(
            platform, work, RUMR(known_error=error), model2, output_ratio=0.0, seed=seed
        )
        assert output.makespan == scalar.makespan
        assert output.returns == ()

    @given(
        platform=homog_platforms,
        work=st.floats(min_value=10.0, max_value=500.0, **finite),
        ratio=st.floats(min_value=0.0, max_value=1.0, **finite),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15)
    def test_output_conserves_work_and_orders_returns(self, platform, work, ratio, seed):
        from repro.sim.output import simulate_with_output

        result = simulate_with_output(
            platform, work, Factoring(), NormalErrorModel(0.2),
            output_ratio=ratio, seed=seed,
        )
        assert sum(r.size for r in result.records) == pytest.approx(work, rel=1e-7)
        ends = {r.index: r.comp_end for r in result.records}
        for ret in result.returns:
            assert ret.link_start >= ends[ret.chunk_index] - 1e-9
        assert result.makespan >= result.compute_makespan - 1e-12


class TestBatchSimulatorProperty:
    @given(
        platform=homog_platforms,
        work=st.floats(min_value=10.0, max_value=2000.0, **finite),
        seeds=st.lists(st.integers(min_value=0, max_value=2**31), min_size=1, max_size=4),
    )
    @settings(max_examples=25)
    def test_batch_equals_scalar_at_zero_error(self, platform, work, seeds):
        from repro.sim.batch import simulate_static_batch

        plan = solve_umr(platform, work).to_chunk_plan()
        scalar = simulate(platform, work, UMR(), NoError()).makespan
        batch = simulate_static_batch(platform, plan, error=0.0, seeds=seeds)
        assert all(b == scalar for b in batch)

    @given(
        platform=homog_platforms,
        work=st.floats(min_value=10.0, max_value=2000.0, **finite),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20)
    def test_batch_equals_scalar_at_tiny_error(self, platform, work, seed):
        # At magnitude 0.05 the truncation floor (0.01) is ~19 sigma away:
        # no resampling ever fires, so the block draw consumes the streams
        # identically and results are bitwise equal.
        from repro.sim.batch import simulate_static_batch

        plan = solve_umr(platform, work).to_chunk_plan()
        scalar = simulate(platform, work, UMR(), NormalErrorModel(0.05), seed=seed)
        batch = simulate_static_batch(platform, plan, error=0.05, seeds=[seed])
        assert batch[0] == scalar.makespan


class TestDeterminism:
    @given(
        platform=homog_platforms,
        work=workloads,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25)
    def test_same_seed_same_trajectory(self, platform, work, seed):
        a = simulate(platform, work, Factoring(), UniformErrorModel(0.3), seed=seed)
        b = simulate(platform, work, Factoring(), UniformErrorModel(0.3), seed=seed)
        assert a.makespan == b.makespan
        assert a.records == b.records


class TestErrorModelProperties:
    @given(
        magnitude=st.floats(min_value=0.0, max_value=1.0, **finite),
        predicted=st.floats(min_value=0.0, max_value=1e6, **finite),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_perturbed_durations_never_negative(self, magnitude, predicted, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        for model in (NormalErrorModel(magnitude), UniformErrorModel(magnitude)):
            assert model.perturb(predicted, rng) >= 0.0

    @given(
        magnitude=st.floats(min_value=0.01, max_value=1.0, **finite),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_ratio_above_floor(self, magnitude, seed):
        import numpy as np

        from repro.errors.models import MIN_RATIO

        rng = np.random.default_rng(seed)
        model = NormalErrorModel(magnitude)
        assert all(model.ratio(rng) >= MIN_RATIO for _ in range(50))


class TestWorkConservation:
    @given(
        platform=homog_platforms,
        work=workloads,
        error=st.floats(min_value=0.0, max_value=2.0, **finite),
    )
    @settings(max_examples=40)
    def test_rumr_split_partitions_workload(self, platform, work, error):
        w1, w2 = RUMR(known_error=error).split(platform, work)
        assert w1 >= 0 and w2 >= 0
        assert w1 + w2 == pytest.approx(work, rel=1e-12)

    @given(
        platform=homog_platforms,
        work=workloads,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30)
    def test_dispatched_equals_requested(self, platform, work, seed):
        for sched in (UMR(), Factoring(), RUMR(known_error=0.3)):
            result = simulate(platform, work, sched, NormalErrorModel(0.2), seed=seed)
            assert result.dispatched_work == pytest.approx(work, rel=1e-7)
