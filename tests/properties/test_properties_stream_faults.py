"""Properties of the stream-level fault plane.

Three invariants the plane must hold for *any* platform, arrival mix,
crash realization and failure policy:

* **Work conservation across failures** — every unit of dispatched work
  is either delivered or on the loss ledger, failed jobs included; and
  each completed job received exactly what it asked for.
* **No dispatch to the dead** — once a worker's stream-clock crash time
  has passed, no later grant includes it: every chunk sent to a worker
  starts strictly before that worker's death.
* **Determinism in the stream seed** — the whole faulty stream (grants,
  retries, backoff timings, exclusion ledger) is a pure function of
  ``(platform, arrivals, seed, policy, failure_policy)``.
"""

import math

from hypothesis import given
from hypothesis import strategies as st

import pytest

from repro.errors import CrashFaults
from repro.sim import simulate_stream
from repro.workloads import JobArrival

from tests.properties.strategies import homogeneous_platforms, seeds

pytestmark = [pytest.mark.property, pytest.mark.multijob, pytest.mark.stream_faults]

platforms = homogeneous_platforms(
    min_workers=2, max_workers=8, min_factor=1.1, max_factor=2.5,
    max_latency=0.5, with_tlat=False,
)

#: Sparse-to-dense arrival patterns as (gap, work) pairs.
job_streams = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=80.0, allow_nan=False, allow_infinity=False),
        st.floats(min_value=20.0, max_value=200.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=5,
)

failure_policies = st.sampled_from(
    ("drop", "retry:attempts=2,backoff=4", "resubmit:attempts=3")
)

stream_policies = st.sampled_from(
    ("fcfs", "partitioned:parts=2", "interleaved:slices=2")
)


def make_jobs(pattern):
    jobs, t = [], 0.0
    for i, (gap, work) in enumerate(pattern):
        t += gap
        jobs.append(JobArrival(job_id=i, time=t, work=work))
    return jobs


def run(platform, pattern, seed, policy, failure_policy):
    return simulate_stream(
        platform,
        make_jobs(pattern),
        seed=seed,
        policy=policy,
        faults=crash_model_for(seed),
        failure_policy=failure_policy,
    )


def crash_model_for(seed):
    # Vary sparing with the seed so both regimes (whole-star death vs a
    # guaranteed survivor) are exercised without a second @given axis.
    return CrashFaults(prob=0.9, tmax=40.0, spare_one=bool(seed % 2))


@given(
    platform=platforms,
    pattern=job_streams,
    seed=seeds(2**31 - 1),
    policy=stream_policies,
    failure_policy=failure_policies,
)
def test_work_is_conserved_including_failed_jobs(
    platform, pattern, seed, policy, failure_policy
):
    stream = run(platform, pattern, seed, policy, failure_policy)
    assert stream.dispatched_work == pytest.approx(
        stream.delivered_work + stream.work_lost, rel=1e-9, abs=1e-9
    )
    for rec in stream.completed_jobs:
        assert rec.delivered_work == pytest.approx(rec.job.work, rel=1e-9)
    # Every job is accounted for: completed or explicitly failed.
    assert len(stream.completed_jobs) + stream.jobs_failed == len(stream.jobs)


@given(
    platform=platforms,
    pattern=job_streams,
    seed=seeds(2**31 - 1),
    policy=stream_policies,
    failure_policy=failure_policies,
)
def test_no_chunk_is_sent_to_an_excluded_worker(
    platform, pattern, seed, policy, failure_policy
):
    stream = run(platform, pattern, seed, policy, failure_policy)
    deaths = dict(stream.excluded)
    for rec in stream.jobs:
        for i, result in enumerate(rec.results):
            workers = rec.workers_for_slice(i)
            offset = rec.slice_starts[i]
            for r in result.records:
                w = workers[r.worker]
                assert offset + r.send_start < deaths.get(w, math.inf), (
                    f"chunk sent to worker {w} at "
                    f"t={offset + r.send_start} after its death at "
                    f"{deaths.get(w)}"
                )


@given(
    platform=platforms,
    pattern=job_streams,
    seed=seeds(2**31 - 1),
    policy=stream_policies,
    failure_policy=failure_policies,
)
def test_faulty_streams_are_deterministic_in_the_seed(
    platform, pattern, seed, policy, failure_policy
):
    a = run(platform, pattern, seed, policy, failure_policy)
    b = run(platform, pattern, seed, policy, failure_policy)
    assert a.jobs == b.jobs
    assert a.excluded == b.excluded
    assert a.stream_events == b.stream_events
