"""Tests for the steady-state throughput bound and per-run bounds."""

import math

import pytest

from repro.analysis import (
    efficiency,
    makespan_lower_bound,
    steady_state_throughput,
)
from repro.core import UMR, EqualSplit, Factoring
from repro.errors import NoError
from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform
from repro.sim import simulate


class TestSteadyStateLP:
    def test_homogeneous_feasible_platform_saturates_all(self):
        # B = 1.5*N*S: the link can feed everyone; throughput = N*S.
        p = homogeneous_platform(10, S=1.0, bandwidth_factor=1.5)
        alloc = steady_state_throughput(p)
        assert alloc.throughput == pytest.approx(10.0)
        assert alloc.saturated == tuple(range(10))
        assert alloc.link_utilization == pytest.approx(1 / 1.5)

    def test_link_bound_platform(self):
        # B = 0.5*N*S: only half the aggregate speed can be fed.
        p = homogeneous_platform(10, S=1.0, B=5.0)
        alloc = steady_state_throughput(p)
        assert alloc.throughput == pytest.approx(5.0)
        assert alloc.link_utilization == pytest.approx(1.0)

    def test_bandwidth_priority_over_speed(self):
        # A slow worker with a huge link must be saturated before a fast
        # worker with a tiny link — the bandwidth-centric principle.
        p = PlatformSpec(
            [
                WorkerSpec(S=10.0, B=2.0),   # fast, starved link
                WorkerSpec(S=1.0, B=100.0),  # slow, cheap to feed
            ]
        )
        alloc = steady_state_throughput(p)
        assert 1 in alloc.saturated
        assert alloc.rates[1] == pytest.approx(1.0)
        # Worker 0 gets the remaining link fraction: (1 - 0.01) * 2.
        assert alloc.rates[0] == pytest.approx(1.98)
        assert alloc.throughput == pytest.approx(2.98)

    def test_infinite_bandwidth_costs_no_link(self):
        p = PlatformSpec([WorkerSpec(S=3.0, B=math.inf), WorkerSpec(S=1.0, B=2.0)])
        alloc = steady_state_throughput(p)
        assert alloc.throughput == pytest.approx(4.0)
        assert alloc.link_utilization == pytest.approx(0.5)

    def test_finite_chunks_degrade_throughput(self):
        p = homogeneous_platform(10, S=1.0, bandwidth_factor=1.2, cLat=0.5, nLat=0.2)
        fluid = steady_state_throughput(p).throughput
        coarse = steady_state_throughput(p, chunk_size=50.0).throughput
        fine = steady_state_throughput(p, chunk_size=1.0).throughput
        assert fine < coarse <= fluid + 1e-12

    def test_bad_chunk_size_rejected(self):
        p = homogeneous_platform(2, S=1.0, B=4.0)
        with pytest.raises(ValueError):
            steady_state_throughput(p, chunk_size=0.0)

    def test_makespan_bound(self):
        p = homogeneous_platform(10, S=1.0, bandwidth_factor=1.5)
        alloc = steady_state_throughput(p)
        assert alloc.makespan_bound(1000.0) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            alloc.makespan_bound(-1.0)


class TestBounds:
    def test_lower_bound_at_least_work_bound(self):
        p = homogeneous_platform(8, S=1.0, bandwidth_factor=1.4, cLat=0.2, nLat=0.1)
        assert makespan_lower_bound(p, 1000.0) >= 1000.0 / 8

    def test_no_schedule_beats_the_bound(self):
        p = homogeneous_platform(8, S=1.0, bandwidth_factor=1.4, cLat=0.2, nLat=0.1)
        bound = makespan_lower_bound(p, 1000.0)
        for sched in (UMR(), Factoring(), EqualSplit()):
            result = simulate(p, 1000.0, sched, NoError())
            assert result.makespan >= bound - 1e-9

    def test_umr_approaches_bound_for_large_workloads(self):
        # Per-round overheads amortize: efficiency → 1 as W grows.
        p = homogeneous_platform(8, S=1.0, bandwidth_factor=1.4, cLat=0.2, nLat=0.1)
        effs = []
        for w in (100.0, 1000.0, 100000.0):
            result = simulate(p, w, UMR(), NoError())
            effs.append(efficiency(result))
        assert effs == sorted(effs)
        assert effs[-1] > 0.98

    def test_efficiency_in_unit_interval(self):
        p = homogeneous_platform(4, S=1.0, bandwidth_factor=1.5, cLat=0.3, nLat=0.2)
        result = simulate(p, 200.0, Factoring(), NoError())
        assert 0.0 < efficiency(result) <= 1.0

    def test_bad_work_rejected(self):
        p = homogeneous_platform(2, S=1.0, B=4.0)
        with pytest.raises(ValueError):
            makespan_lower_bound(p, 0.0)
