"""Tests for trace-driven error models."""

import numpy as np
import pytest

from repro.errors.models import MIN_RATIO
from repro.errors.trace import TraceErrorModel, trace_from_workload
from repro.workloads import RayTracing, SignalScan


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestTraceErrorModel:
    def test_magnitude_is_trace_std(self):
        model = TraceErrorModel(trace=(0.8, 1.2, 0.8, 1.2))
        assert model.magnitude == pytest.approx(0.2)

    def test_replay_preserves_values(self, rng):
        trace = (0.9, 1.0, 1.1, 1.0)
        model = TraceErrorModel(trace=trace)
        draws = [model.ratio(rng) for _ in range(8)]
        assert set(draws) <= set(trace)

    def test_replay_is_cyclic_and_ordered(self, rng):
        trace = (0.5, 1.0, 1.5)
        model = TraceErrorModel(trace=trace)
        draws = [model.ratio(rng) for _ in range(6)]
        # Consecutive draws follow the trace order from the random offset.
        start = trace.index(draws[0])
        expected = [trace[(start + k) % 3] for k in range(6)]
        assert draws == expected

    def test_offset_varies_with_stream(self):
        trace = tuple(0.5 + 0.01 * k for k in range(100))
        firsts = set()
        for seed in range(20):
            model = TraceErrorModel(trace=trace)
            firsts.add(model.ratio(np.random.default_rng(seed)))
        assert len(firsts) > 5

    def test_reset_allows_reuse(self, rng):
        model = TraceErrorModel(trace=(0.9, 1.1))
        model.ratio(rng)
        model.reset()
        model.ratio(np.random.default_rng(0))  # no error

    def test_values_clipped_at_floor(self, rng):
        model = TraceErrorModel(trace=(1e-9, 1.0, 2.0))
        draws = {model.ratio(rng) for _ in range(9)}
        assert min(draws) >= MIN_RATIO

    def test_short_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceErrorModel(trace=(1.0,))

    def test_perturb_uses_trace(self, rng):
        model = TraceErrorModel(trace=(2.0, 2.0, 2.0))
        assert model.perturb(5.0, rng) == pytest.approx(10.0)

    def test_divide_mode(self, rng):
        model = TraceErrorModel(trace=(2.0, 2.0), mode="divide")
        assert model.perturb(5.0, rng) == pytest.approx(2.5)


class TestTraceFromWorkload:
    def test_mean_near_one(self):
        model = trace_from_workload(SignalScan(), chunk_units=10, length=64, seed=1)
        assert np.mean(model.trace) == pytest.approx(1.0, abs=0.05)

    def test_magnitude_tracks_workload_variability(self):
        calm = trace_from_workload(
            SignalScan(early_exit_fraction=0.0), chunk_units=10, length=64, seed=1
        )
        wild = trace_from_workload(
            RayTracing(sigma=0.8, correlation=0.9), chunk_units=10, length=64, seed=1
        )
        assert wild.magnitude > calm.magnitude

    def test_correlated_workload_gives_correlated_trace(self):
        model = trace_from_workload(
            RayTracing(sigma=0.8, correlation=0.97, jitter_sigma=0.05),
            chunk_units=4,
            length=128,
            seed=2,
        )
        arr = np.asarray(model.trace)
        r = np.corrcoef(arr[:-1], arr[1:])[0, 1]
        assert r > 0.3

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            trace_from_workload(SignalScan(), chunk_units=0)
        with pytest.raises(ValueError):
            trace_from_workload(SignalScan(), chunk_units=5, length=1)

    def test_end_to_end_in_simulation(self):
        from repro.core import RUMR
        from repro.platform import homogeneous_platform
        from repro.sim import simulate, validate_schedule

        workload = RayTracing(width=960, height=540, tile=32)
        platform = workload.calibrated_platform(
            homogeneous_platform(6, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.05)
        )
        model = trace_from_workload(workload, chunk_units=8, length=128, seed=3)
        scheduler = RUMR(known_error=min(model.magnitude, 0.99))
        result = simulate(platform, workload.total_units, scheduler, model, seed=4)
        validate_schedule(result)
