"""Tests for the worker fault models (spec grammar, sampling, arithmetic)."""

import dataclasses
import math

import numpy as np
import pytest

from repro.errors import (
    NO_FAULT_SPEC,
    CrashFaults,
    FaultSchedule,
    LinkSpikeFaults,
    NoFaults,
    PauseFaults,
    SlowdownFaults,
    make_fault_model,
)
from repro.platform import homogeneous_platform


@pytest.fixture
def rng():
    return np.random.default_rng(2003)


@pytest.fixture
def platform():
    return homogeneous_platform(6, S=1.0, bandwidth_factor=1.5, cLat=0.1, nLat=0.1)


class TestSpecParsing:
    @pytest.mark.parametrize(
        "spec,cls",
        [
            ("none", NoFaults),
            ("", NoFaults),
            ("  none  ", NoFaults),
            ("crash:p=0.2,tmax=400", CrashFaults),
            ("crash:worker=0,at=25", CrashFaults),
            ("pause:p=0.5,tmax=200,dur=60", PauseFaults),
            ("slow:p=0.5,tmax=200,factor=2.5", SlowdownFaults),
            ("spike:p=0.1,delay=5", LinkSpikeFaults),
        ],
    )
    def test_kinds(self, spec, cls):
        assert isinstance(make_fault_model(spec), cls)

    @pytest.mark.parametrize(
        "spec",
        [
            "crash:p=0.2,tmax=400",
            "crash:worker=0,at=25",
            "pause:p=0.5,tmax=200,dur=60",
            "slow:p=0.5,tmax=200,factor=2.5",
            "spike:p=0.1,delay=5",
            NO_FAULT_SPEC,
        ],
    )
    def test_spec_round_trips(self, spec):
        model = make_fault_model(spec)
        assert model.spec == spec.strip()
        again = make_fault_model(model.spec)
        assert again.spec == model.spec
        assert type(again) is type(model)

    def test_model_instance_passes_through(self):
        model = CrashFaults(prob=0.1, tmax=50.0)
        assert make_fault_model(model) is model

    @pytest.mark.parametrize(
        "bad",
        [
            "crash",  # no parameters
            "crash:p=0.2",  # missing tmax
            "crash:p=0.2,tmax=10,bogus=1",  # unknown parameter
            "crash:worker=0",  # at missing
            "crash:worker=0.5,at=3",  # non-integral worker
            "crash:p=2,tmax=10",  # p outside [0, 1]
            "pause:p=0.5,tmax=10,dur=-1",
            "slow:p=0.5,tmax=10,factor=0.5",  # factor < 1
            "spike:p=0.1,delay=-2",
            "meteor:p=1",  # unknown kind
            "crash:p=abc,tmax=10",  # non-numeric value
            "crash:p0.2,tmax=10",  # malformed k=v
        ],
    )
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ValueError):
            make_fault_model(bad)

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            make_fault_model(42)


class TestSampling:
    def test_no_faults_schedule_is_clear(self, platform, rng):
        schedule = NoFaults().sample(platform, rng)
        assert not schedule.any_faults
        assert schedule.num_workers == platform.N
        assert all(t == math.inf for t in schedule.crash_times)

    def test_sampling_is_deterministic_in_seed(self, platform):
        model = make_fault_model("crash:p=0.5,tmax=100")
        a = model.sample(platform, np.random.default_rng(7))
        b = model.sample(platform, np.random.default_rng(7))
        assert a == b

    def test_deterministic_crash_ignores_rng(self, platform):
        model = make_fault_model("crash:worker=2,at=30")
        a = model.sample(platform, np.random.default_rng(1))
        b = model.sample(platform, np.random.default_rng(2))
        assert a == b
        assert a.crash_times[2] == 30.0
        assert sum(t != math.inf for t in a.crash_times) == 1

    def test_deterministic_crash_out_of_range(self, platform, rng):
        with pytest.raises(ValueError):
            make_fault_model("crash:worker=99,at=5").sample(platform, rng)

    def test_crash_onsets_within_horizon(self, platform, rng):
        schedule = CrashFaults(prob=1.0, tmax=50.0, spare_one=False).sample(
            platform, rng
        )
        assert all(0.0 <= t <= 50.0 for t in schedule.crash_times)

    def test_spare_one_keeps_a_survivor(self, platform, rng):
        schedule = CrashFaults(prob=1.0, tmax=50.0).sample(platform, rng)
        assert sum(t == math.inf for t in schedule.crash_times) == 1
        # The spared worker is the latest-crashing one: every realized
        # crash is earlier than the draw that was cleared.
        cleared = CrashFaults(prob=1.0, tmax=50.0, spare_one=False).sample(
            platform, np.random.default_rng(2003)
        )
        spared = schedule.crash_times.index(math.inf)
        assert cleared.crash_times[spared] == max(cleared.crash_times)

    def test_pause_and_slowdown_populate_their_axis(self, platform, rng):
        p = PauseFaults(prob=1.0, tmax=10.0, duration=5.0).sample(platform, rng)
        assert all(d == 5.0 for _, d in p.pauses)
        assert all(t == math.inf for t in p.crash_times)
        s = SlowdownFaults(prob=1.0, tmax=10.0, factor=2.0).sample(platform, rng)
        assert all(f == 2.0 for _, f in s.slowdowns)

    def test_spike_schedule_has_no_per_worker_faults(self, platform, rng):
        schedule = LinkSpikeFaults(prob=0.3, delay=4.0).sample(platform, rng)
        assert schedule.any_faults
        assert schedule.spike_prob == 0.3
        assert all(t == math.inf for t in schedule.crash_times)

    def test_zero_probability_yields_clear_schedule(self, platform, rng):
        for spec in ("crash:p=0,tmax=10", "pause:p=0,tmax=10,dur=5",
                     "slow:p=0,tmax=10,factor=2"):
            assert not make_fault_model(spec).sample(platform, rng).any_faults


class TestComputeDuration:
    def _schedule(self, pause=(0.0, 0.0), slow=(0.0, 1.0)):
        return FaultSchedule(
            crash_times=(math.inf,),
            pauses=(pause,),
            slowdowns=(slow,),
        )

    def test_identity_without_faults(self):
        s = self._schedule()
        assert s.compute_duration(0, 3.0, 7.0) == 7.0

    def test_start_inside_pause_window(self):
        # Pause [10, 15): work starting at 12 waits until 15 then runs fully.
        s = self._schedule(pause=(10.0, 5.0))
        assert s.compute_duration(0, 12.0, 4.0) == (15.0 + 4.0) - 12.0

    def test_straddling_pause_window(self):
        # Starts before the window, would end inside it: delayed by its length.
        s = self._schedule(pause=(10.0, 5.0))
        assert s.compute_duration(0, 8.0, 4.0) == 4.0 + 5.0

    def test_finishing_before_pause_unaffected(self):
        s = self._schedule(pause=(10.0, 5.0))
        assert s.compute_duration(0, 2.0, 4.0) == 4.0

    def test_starting_after_pause_unaffected(self):
        s = self._schedule(pause=(10.0, 5.0))
        assert s.compute_duration(0, 15.0, 4.0) == 4.0

    def test_slowdown_after_onset(self):
        s = self._schedule(slow=(10.0, 3.0))
        assert s.compute_duration(0, 12.0, 4.0) == 12.0

    def test_slowdown_straddling_onset(self):
        # 2s done at nominal rate, remaining 2s stretched 3x.
        s = self._schedule(slow=(10.0, 3.0))
        assert s.compute_duration(0, 8.0, 4.0) == 2.0 + 2.0 * 3.0

    def test_finishing_before_onset_unaffected(self):
        s = self._schedule(slow=(10.0, 3.0))
        assert s.compute_duration(0, 2.0, 4.0) == 4.0

    def test_pause_then_slowdown_compose(self):
        # Pause shifts the computation into the slowdown regime.
        s = self._schedule(pause=(0.0, 10.0), slow=(5.0, 2.0))
        # start=0 inside pause -> duration = 10 + 4 = 14; start+14 > 5 and
        # start < 5, so done = 5, duration = 5 + 9 * 2 = 23.
        assert s.compute_duration(0, 0.0, 4.0) == 23.0


class TestLinkExtra:
    def test_no_draw_without_spikes(self):
        s = FaultSchedule(
            crash_times=(math.inf,), pauses=((0.0, 0.0),), slowdowns=((0.0, 1.0),)
        )
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        assert s.link_extra(rng) == 0.0
        assert rng.bit_generator.state == before  # stream untouched

    def test_one_draw_per_call_spike_or_not(self):
        s = dataclasses.replace(
            FaultSchedule(
                crash_times=(math.inf,), pauses=((0.0, 0.0),), slowdowns=((0.0, 1.0),)
            ),
            spike_prob=0.5,
            spike_delay=3.0,
        )
        rng = np.random.default_rng(5)
        draws = [s.link_extra(rng) for _ in range(200)]
        assert set(draws) == {0.0, 3.0}
        reference = np.random.default_rng(5)
        expected = [
            3.0 if reference.random() < 0.5 else 0.0 for _ in range(200)
        ]
        assert draws == expected

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule(
                crash_times=(math.inf,), pauses=(), slowdowns=((0.0, 1.0),)
            )
        with pytest.raises(ValueError):
            FaultSchedule(
                crash_times=(math.inf,),
                pauses=((0.0, 0.0),),
                slowdowns=((0.0, 1.0),),
                spike_prob=1.5,
            )
