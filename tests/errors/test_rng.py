"""Tests for random-stream management."""

import numpy as np
import pytest

from repro.errors import spawn_rngs, stream_for


def test_spawn_produces_requested_count():
    assert len(spawn_rngs(0, 3)) == 3


def test_spawned_streams_are_reproducible():
    a1, b1 = spawn_rngs(42, 2)
    a2, b2 = spawn_rngs(42, 2)
    assert a1.random(5).tolist() == a2.random(5).tolist()
    assert b1.random(5).tolist() == b2.random(5).tolist()


def test_spawned_streams_are_independent():
    a, b = spawn_rngs(42, 2)
    assert a.random(5).tolist() != b.random(5).tolist()


def test_different_seeds_differ():
    (a,) = spawn_rngs(1, 1)
    (b,) = spawn_rngs(2, 1)
    assert a.random(5).tolist() != b.random(5).tolist()


def test_spawn_accepts_seedsequence():
    ss = np.random.SeedSequence(7)
    (a,) = spawn_rngs(ss, 1)
    (b,) = spawn_rngs(np.random.SeedSequence(7), 1)
    assert a.random(3).tolist() == b.random(3).tolist()


def test_stream_for_is_keyed():
    x = stream_for(5, 1, 2).random(4).tolist()
    y = stream_for(5, 1, 3).random(4).tolist()
    z = stream_for(5, 1, 2).random(4).tolist()
    assert x == z
    assert x != y


def test_stream_for_none_seed_defaults_to_zero():
    assert stream_for(None, 1).random(3).tolist() == stream_for(0, 1).random(3).tolist()


def test_stream_for_rejects_negative_keys():
    with pytest.raises(ValueError):
        stream_for(0, -1)
