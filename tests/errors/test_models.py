"""Tests for the prediction-error models (paper §4.1)."""

import math

import numpy as np
import pytest

from repro.errors import (
    DriftingErrorModel,
    NoError,
    NormalErrorModel,
    UniformErrorModel,
    make_error_model,
)
from repro.errors.models import MIN_RATIO


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


class TestNoError:
    def test_identity(self, rng):
        m = NoError()
        assert m.perturb(3.7, rng) == 3.7

    def test_zero_stays_zero(self, rng):
        assert NoError().perturb(0.0, rng) == 0.0

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            NoError().perturb(-1.0, rng)


class TestNormalErrorModel:
    def test_zero_magnitude_is_exact(self, rng):
        m = NormalErrorModel(0.0)
        assert m.perturb(5.0, rng) == 5.0

    def test_ratio_statistics_match_paper_model(self, rng):
        # predicted/effective ~ Normal(1, error): check mean and std of the
        # drawn ratio over many samples.
        m = NormalErrorModel(0.3)
        ratios = np.array([m.ratio(rng) for _ in range(20000)])
        assert ratios.mean() == pytest.approx(1.0, abs=0.01)
        assert ratios.std() == pytest.approx(0.3, abs=0.01)

    def test_truncation_no_nonpositive_ratio(self, rng):
        m = NormalErrorModel(0.5)
        ratios = [m.ratio(rng) for _ in range(5000)]
        assert min(ratios) >= MIN_RATIO

    def test_effective_time_positive(self, rng):
        m = NormalErrorModel(0.5)
        for _ in range(1000):
            assert m.perturb(1.0, rng) > 0

    def test_perturb_multiply_mode(self):
        # With a fixed generator state the perturbed value is pred * X.
        m = NormalErrorModel(0.2)
        r1 = np.random.default_rng(7)
        r2 = np.random.default_rng(7)
        x = m.ratio(r1)
        assert m.perturb(10.0, r2) == pytest.approx(10.0 * x)

    def test_perturb_divide_mode(self):
        # The verbatim paper reading: pred / X, unbounded right tail.
        m = NormalErrorModel(0.2, mode="divide")
        r1 = np.random.default_rng(7)
        r2 = np.random.default_rng(7)
        x = m.ratio(r1)
        assert m.perturb(10.0, r2) == pytest.approx(10.0 / x)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            NormalErrorModel(0.2, mode="sideways")

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValueError):
            NormalErrorModel(-0.1)

    def test_bad_min_ratio_rejected(self):
        with pytest.raises(ValueError):
            NormalErrorModel(0.1, min_ratio=0.0)

    def test_zero_predicted_stays_zero(self, rng):
        assert NormalErrorModel(0.4).perturb(0.0, rng) == 0.0


class TestUniformErrorModel:
    def test_matches_mean_and_std(self, rng):
        m = UniformErrorModel(0.2)
        ratios = np.array([m.ratio(rng) for _ in range(20000)])
        assert ratios.mean() == pytest.approx(1.0, abs=0.01)
        assert ratios.std() == pytest.approx(0.2, abs=0.01)

    def test_support_is_bounded(self, rng):
        m = UniformErrorModel(0.2)
        half = math.sqrt(3.0) * 0.2
        ratios = [m.ratio(rng) for _ in range(2000)]
        assert min(ratios) >= 1 - half - 1e-12
        assert max(ratios) <= 1 + half + 1e-12

    def test_large_magnitude_clipped_at_min_ratio(self, rng):
        m = UniformErrorModel(0.6)  # lower endpoint would be negative
        ratios = [m.ratio(rng) for _ in range(2000)]
        assert min(ratios) >= MIN_RATIO


class TestDriftingErrorModel:
    def test_mean_drifts_with_advance(self, rng):
        m = DriftingErrorModel(magnitude=0.0, drift_per_step=0.1)
        assert m.ratio(rng) == 1.0
        m.advance()
        m.advance()
        assert m.ratio(rng) == pytest.approx(1.2)

    def test_reset_restores_initial_mean(self, rng):
        m = DriftingErrorModel(magnitude=0.0, drift_per_step=0.5)
        m.advance()
        m.reset()
        assert m.ratio(rng) == 1.0

    def test_drift_cannot_push_mean_nonpositive(self, rng):
        m = DriftingErrorModel(magnitude=0.0, drift_per_step=-10.0)
        m.advance()
        assert m.ratio(rng) >= MIN_RATIO


class TestFactory:
    def test_zero_magnitude_gives_noerror(self):
        assert isinstance(make_error_model("normal", 0.0), NoError)
        assert isinstance(make_error_model("uniform", 0.0), NoError)

    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("none", NoError),
            ("normal", NormalErrorModel),
            ("uniform", UniformErrorModel),
            ("drifting", DriftingErrorModel),
        ],
    )
    def test_kinds(self, kind, cls):
        magnitude = 0.3
        model = make_error_model(kind, magnitude)
        assert isinstance(model, cls)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_error_model("weibull", 0.1)
