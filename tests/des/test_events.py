"""Tests for event primitives: success, failure, composition."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Event
from repro.des.events import EventError


def test_event_starts_pending():
    env = Environment()
    ev = Event(env)
    assert not ev.triggered
    assert not ev.processed


def test_succeed_twice_raises():
    env = Environment()
    ev = Event(env)
    ev.succeed(1)
    with pytest.raises(EventError):
        ev.succeed(2)


def test_fail_then_succeed_raises():
    env = Environment()
    ev = Event(env)
    ev.fail(RuntimeError("boom"))
    with pytest.raises(EventError):
        ev.succeed()


def test_fail_requires_exception_instance():
    env = Environment()
    ev = Event(env)
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_failed_event_raises_on_value_access():
    env = Environment()
    ev = Event(env)
    ev.fail(RuntimeError("boom"))
    env.run()
    with pytest.raises(RuntimeError, match="boom"):
        _ = ev.value


def test_failed_event_throws_into_process():
    env = Environment()
    ev = Event(env)
    caught = []

    def proc(env):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_ok_property_after_processing():
    env = Environment()
    ev = Event(env)
    ev.succeed()
    env.run()
    assert ev.ok


def test_ok_before_processing_raises():
    env = Environment()
    ev = Event(env)
    with pytest.raises(EventError):
        _ = ev.ok


def test_allof_waits_for_every_child():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(3, value="b")
        result = yield AllOf(env, [t1, t2])
        times.append((env.now, sorted(result.values())))

    env.process(proc(env))
    env.run()
    assert times == [(3.0, ["a", "b"])]


def test_anyof_fires_on_first_child():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(3, value="slow")
        result = yield AnyOf(env, [t1, t2])
        times.append((env.now, list(result.values())))

    env.process(proc(env))
    env.run()
    assert times == [(1.0, ["fast"])]


def test_allof_empty_fires_immediately():
    env = Environment()
    cond = AllOf(env, [])
    assert cond.triggered


def test_allof_propagates_child_failure():
    env = Environment()
    ok = env.timeout(1)
    bad = Event(env)
    caught = []

    def proc(env):
        try:
            yield AllOf(env, [ok, bad])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    bad.fail(ValueError("child failed"))
    env.run()
    assert caught == ["child failed"]


def test_condition_rejects_foreign_events():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env2.timeout(1)])


def test_condition_with_already_fired_child():
    env = Environment()
    done = env.timeout(0)
    env.run()
    assert done.processed
    seen = []

    def proc(env):
        result = yield AllOf(env, [done])
        seen.append(list(result.values()))

    env.process(proc(env))
    env.run()
    assert seen == [[None]]
