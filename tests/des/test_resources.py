"""Tests for Resource (FIFO server) and Store (FIFO queue)."""

import pytest

from repro.des import Environment, Resource, Store


def test_resource_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_immediate_grant_when_free():
    env = Environment()
    res = Resource(env)
    req = res.request()
    assert req.triggered
    assert res.count == 1


def test_queueing_respects_fifo():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, tag, hold):
        req = res.request()
        yield req
        order.append(("acquire", tag, env.now))
        yield env.timeout(hold)
        res.release(req)

    for tag in ("a", "b", "c"):
        env.process(user(env, tag, 2.0))
    env.run()
    assert order == [
        ("acquire", "a", 0.0),
        ("acquire", "b", 2.0),
        ("acquire", "c", 4.0),
    ]


def test_capacity_two_allows_two_concurrent_users():
    env = Environment()
    res = Resource(env, capacity=2)
    acquired = []

    def user(env, tag):
        req = res.request()
        yield req
        acquired.append((tag, env.now))
        yield env.timeout(1)
        res.release(req)

    for tag in ("a", "b", "c"):
        env.process(user(env, tag))
    env.run()
    assert acquired == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_release_foreign_request_raises():
    env = Environment()
    res = Resource(env)
    other = Resource(env)
    req = other.request()
    with pytest.raises(ValueError):
        res.release(req)


def test_cancel_waiting_request():
    env = Environment()
    res = Resource(env)
    first = res.request()
    second = res.request()
    assert res.queue_length == 1
    res.cancel(second)
    assert res.queue_length == 0
    res.release(first)
    assert not second.triggered


def test_cancel_granted_request_raises():
    env = Environment()
    res = Resource(env)
    req = res.request()
    with pytest.raises(ValueError):
        res.cancel(req)


def test_queue_length_tracks_waiters():
    env = Environment()
    res = Resource(env)
    res.request()
    res.request()
    res.request()
    assert res.count == 1
    assert res.queue_length == 2


def test_store_put_get_order():
    env = Environment()
    store = Store(env)
    store.put("x")
    store.put("y")
    got = []

    def consumer(env):
        got.append((yield store.get()))
        got.append((yield store.get()))

    env.process(consumer(env))
    env.run()
    assert got == ["x", "y"]


def test_store_blocking_get():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(5)
        store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(5.0, "late")]


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, tag):
        got.append((tag, (yield store.get())))

    def producer(env):
        yield env.timeout(1)
        store.put(1)
        yield env.timeout(1)
        store.put(2)

    env.process(consumer(env, "first"))
    env.process(consumer(env, "second"))
    env.process(producer(env))
    env.run()
    assert got == [("first", 1), ("second", 2)]


def test_store_len_and_items_snapshot():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == (1, 2)
