"""Tests for the trace Monitor."""

from repro.des import Monitor


def test_record_and_query_by_kind():
    mon = Monitor()
    mon.record(1.0, "send_start", 0, size=5)
    mon.record(2.0, "send_end", 0, size=5)
    mon.record(2.0, "send_start", 1, size=3)
    assert len(mon) == 3
    assert [r.time for r in mon.of_kind("send_start")] == [1.0, 2.0]


def test_query_by_actor():
    mon = Monitor()
    mon.record(1.0, "a", 0)
    mon.record(2.0, "b", 1)
    mon.record(3.0, "c", 0)
    assert [r.kind for r in mon.for_actor(0)] == ["a", "c"]


def test_disabled_monitor_records_nothing():
    mon = Monitor(enabled=False)
    mon.record(1.0, "x", 0)
    assert len(mon) == 0


def test_last_time():
    mon = Monitor()
    assert mon.last_time() == 0.0
    mon.record(4.2, "x", 0)
    mon.record(1.0, "y", 1)
    assert mon.last_time() == 4.2


def test_detail_is_preserved():
    mon = Monitor()
    mon.record(1.0, "send", 3, chunk=7, size=2.5)
    (rec,) = mon.records
    assert rec.detail == {"chunk": 7, "size": 2.5}
    assert rec.actor == 3


def test_iteration_order_is_insertion_order():
    mon = Monitor()
    mon.record(5.0, "later", 0)
    mon.record(1.0, "earlier", 0)
    assert [r.kind for r in mon] == ["later", "earlier"]
