"""Tests for the DES environment: clock, calendar, run modes."""

import pytest

from repro.des import Environment, Event, Timeout
from repro.des.environment import EmptySchedule


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.5)

    env.process(proc(env))
    env.run()
    assert env.now == 3.5


def test_zero_timeout_is_allowed():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [0.0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_run_until_time_stops_clock_at_deadline():
    env = Environment()

    def proc(env):
        yield env.timeout(10)

    env.process(proc(env))
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_time_fires_events_at_deadline():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(4.0)
        seen.append(env.now)

    env.process(proc(env))
    env.run(until=4.0)
    assert seen == [4.0]


def test_run_until_past_deadline_raises():
    env = Environment()
    env.run(until=2.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 42

    p = env.process(proc(env))
    assert env.run(until=p) == 42


def test_run_until_event_never_firing_raises():
    env = Environment()
    orphan = env.event()
    with pytest.raises(RuntimeError):
        env.run(until=orphan)


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_is_inf():
    assert Environment().peek() == float("inf")


def test_simultaneous_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_determinism_two_identical_runs():
    def build_and_run():
        env = Environment()
        log = []

        def worker(env, tag, delay):
            yield env.timeout(delay)
            log.append((env.now, tag))
            yield env.timeout(delay)
            log.append((env.now, tag))

        for tag, delay in [("x", 1.0), ("y", 1.0), ("z", 0.5)]:
            env.process(worker(env, tag, delay))
        env.run()
        return log

    assert build_and_run() == build_and_run()


def test_event_succeed_schedules_immediately():
    env = Environment()
    ev = env.event()
    results = []

    def proc(env):
        value = yield ev
        results.append((env.now, value))

    env.process(proc(env))
    ev.succeed("hello")
    env.run()
    assert results == [(0.0, "hello")]


def test_timeout_carries_value():
    env = Environment()
    results = []

    def proc(env):
        value = yield Timeout(env, 2.0, value="done")
        results.append(value)

    env.process(proc(env))
    env.run()
    assert results == ["done"]


def test_active_process_is_none_outside_execution():
    env = Environment()
    assert env.active_process is None

    def proc(env):
        assert env.active_process is not None
        yield env.timeout(1)

    env.process(proc(env))
    env.run()
    assert env.active_process is None


def test_nested_process_spawning():
    env = Environment()
    result = []

    def child(env, n):
        yield env.timeout(n)
        return n * 2

    def parent(env):
        total = 0
        for n in (1, 2, 3):
            total += yield env.process(child(env, n))
        result.append((env.now, total))

    env.process(parent(env))
    env.run()
    assert result == [(6.0, 12)]


def test_event_value_requires_trigger():
    env = Environment()
    ev = Event(env)
    with pytest.raises(Exception):
        _ = ev.value
