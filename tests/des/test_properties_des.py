"""Property-based tests for the DES kernel itself."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, Resource, Store


class TestClockMonotonicity:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_observed_times_never_decrease(self, delays):
        env = Environment()
        observed = []

        def proc(env, delay):
            yield env.timeout(delay)
            observed.append(env.now)

        for d in delays:
            env.process(proc(env, d))
        env.run()
        assert observed == sorted(observed)
        assert env.now == max(delays)

    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=15,
        )
    )
    def test_sequential_process_accumulates(self, delays):
        env = Environment()

        def proc(env):
            for d in delays:
                yield env.timeout(d)

        env.process(proc(env))
        env.run()
        assert env.now == sum(delays) or abs(env.now - sum(delays)) < 1e-9


class TestResourceInvariants:
    @given(
        capacity=st.integers(min_value=1, max_value=4),
        holds=st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
    )
    def test_capacity_never_exceeded(self, capacity, holds):
        env = Environment()
        res = Resource(env, capacity=capacity)
        concurrent = [0]
        peak = [0]

        def user(env, hold):
            req = res.request()
            yield req
            concurrent[0] += 1
            peak[0] = max(peak[0], concurrent[0])
            yield env.timeout(hold)
            concurrent[0] -= 1
            res.release(req)

        for h in holds:
            env.process(user(env, h))
        env.run()
        assert peak[0] <= capacity
        assert concurrent[0] == 0
        assert res.count == 0
        assert res.queue_length == 0

    @given(
        holds=st.lists(
            st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
            min_size=2,
            max_size=10,
        )
    )
    def test_mutex_grants_are_fifo(self, holds):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(env, tag, hold):
            req = res.request()
            yield req
            order.append(tag)
            yield env.timeout(hold)
            res.release(req)

        for tag, h in enumerate(holds):
            env.process(user(env, tag, h))
        env.run()
        assert order == list(range(len(holds)))


class TestStoreInvariants:
    @given(
        items=st.lists(st.integers(), min_size=0, max_size=30),
        consumer_count=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40)
    def test_everything_put_is_got_exactly_once(self, items, consumer_count):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for item in items:
                yield env.timeout(0.5)
                store.put(item)

        def consumer(env, budget):
            for _ in range(budget):
                item = yield store.get()
                got.append(item)

        budgets = [len(items) // consumer_count] * consumer_count
        budgets[0] += len(items) - sum(budgets)
        env.process(producer(env))
        for b in budgets:
            env.process(consumer(env, b))
        env.run()
        assert sorted(got) == sorted(items)

    @given(items=st.lists(st.integers(), min_size=1, max_size=20))
    def test_single_consumer_preserves_order(self, items):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for item in items:
                yield env.timeout(1)
                store.put(item)

        def consumer(env):
            for _ in items:
                got.append((yield store.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == items
