"""Tests for generator processes: lifecycle, joining, interrupts."""

import pytest

from repro.des import Environment, Interrupt
from repro.des.events import EventError


def test_process_is_alive_until_return():
    env = Environment()

    def proc(env):
        yield env.timeout(2)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive
    assert p.processed


def test_process_return_value_via_join():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return "result"

    def parent(env, out):
        out.append((yield env.process(child(env))))

    out = []
    env.process(parent(env, out))
    env.run()
    assert out == ["result"]


def test_non_generator_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_yielding_non_event_raises():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(TypeError):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    caught = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            caught.append((env.now, exc.cause))

    def attacker(env, target):
        yield env.timeout(3)
        target.interrupt(cause="stop now")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert caught == [(3.0, "stop now")]


def test_interrupt_detaches_from_waited_event():
    env = Environment()
    resumed = []

    def victim(env):
        try:
            yield env.timeout(10)
            resumed.append("timeout")
        except Interrupt:
            yield env.timeout(1)
            resumed.append("post-interrupt")

    def attacker(env, target):
        yield env.timeout(2)
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    # The original timeout must not resume the process a second time.
    assert resumed == ["post-interrupt"]
    assert env.now == 10.0  # the stale timeout still fires, harmlessly


def test_interrupt_terminated_process_raises():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    with pytest.raises(EventError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()
    errors = []

    def proc(env):
        me = env.active_process
        try:
            me.interrupt()
        except EventError as exc:
            errors.append(str(exc))
        yield env.timeout(1)

    env.process(proc(env))
    env.run()
    assert len(errors) == 1


def test_unhandled_interrupt_fails_process():
    env = Environment()

    def victim(env):
        yield env.timeout(100)

    def attacker(env, target):
        yield env.timeout(1)
        target.interrupt("die")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert target.processed
    with pytest.raises(Interrupt):
        _ = target.value


def test_two_processes_can_join_same_process():
    env = Environment()
    results = []

    def worker(env):
        yield env.timeout(5)
        return "done"

    def waiter(env, target, tag):
        value = yield target
        results.append((tag, env.now, value))

    target = env.process(worker(env))
    env.process(waiter(env, target, "w1"))
    env.process(waiter(env, target, "w2"))
    env.run()
    assert results == [("w1", 5.0, "done"), ("w2", 5.0, "done")]


def test_join_already_finished_process():
    env = Environment()

    def quick(env):
        yield env.timeout(0)
        return 7

    p = env.process(quick(env))
    env.run()

    results = []

    def late_joiner(env):
        results.append((yield p))

    env.process(late_joiner(env))
    env.run()
    assert results == [7]
