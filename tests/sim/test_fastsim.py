"""Tests for the fast engine's platform semantics."""

import pytest

from repro.core.base import WAIT, Dispatch, DispatchSource, DeadlockError, Scheduler, StaticPlanSource
from repro.errors import NoError
from repro.platform import PlatformSpec, WorkerSpec
from repro.sim import simulate, simulate_fast


class ListScheduler(Scheduler):
    """Test helper: replay an explicit list of dispatches."""

    name = "list"

    def __init__(self, dispatches):
        self.dispatches = dispatches

    def create_source(self, platform, total_work):
        return StaticPlanSource(self.dispatches)


def single_worker(S=1.0, B=2.0, cLat=0.0, nLat=0.0, tLat=0.0):
    return PlatformSpec([WorkerSpec(S=S, B=B, cLat=cLat, nLat=nLat, tLat=tLat)])


class TestTimelineSemantics:
    def test_single_chunk_timeline(self):
        p = single_worker(S=2.0, B=4.0, cLat=0.5, nLat=0.25, tLat=0.1)
        sched = ListScheduler([Dispatch(worker=0, size=8.0)])
        result = simulate(p, 8.0, sched)
        (r,) = result.records
        assert r.send_start == 0.0
        assert r.send_end == pytest.approx(0.25 + 8.0 / 4.0)  # nLat + c/B
        assert r.arrival == pytest.approx(r.send_end + 0.1)  # + tLat
        assert r.comp_start == r.arrival
        assert r.comp_end == pytest.approx(r.comp_start + 0.5 + 8.0 / 2.0)
        assert result.makespan == r.comp_end

    def test_link_serialization(self):
        p = PlatformSpec([WorkerSpec(S=1.0, B=2.0, nLat=0.5)] * 2)
        sched = ListScheduler(
            [Dispatch(worker=0, size=2.0), Dispatch(worker=1, size=2.0)]
        )
        result = simulate(p, 4.0, sched)
        a, b = result.records
        assert b.send_start == a.send_end  # second transfer waits for the link

    def test_tlat_overlaps_with_next_transfer(self):
        p = PlatformSpec([WorkerSpec(S=1.0, B=2.0, tLat=5.0)] * 2)
        sched = ListScheduler(
            [Dispatch(worker=0, size=2.0), Dispatch(worker=1, size=2.0)]
        )
        result = simulate(p, 4.0, sched)
        a, b = result.records
        # The second send starts before the first chunk has even arrived.
        assert b.send_start < a.arrival

    def test_worker_fifo_queueing(self):
        p = single_worker(S=1.0, B=100.0)
        sched = ListScheduler(
            [Dispatch(worker=0, size=10.0), Dispatch(worker=0, size=10.0)]
        )
        result = simulate(p, 20.0, sched)
        a, b = result.records
        assert b.comp_start == pytest.approx(a.comp_end)  # queued behind

    def test_compute_overlaps_reception(self):
        # Worker computes chunk 1 while chunk 2 is in flight (front-end).
        p = single_worker(S=10.0, B=1.0)
        sched = ListScheduler(
            [Dispatch(worker=0, size=5.0), Dispatch(worker=0, size=5.0)]
        )
        result = simulate(p, 10.0, sched)
        a, b = result.records
        assert a.comp_end < b.arrival  # compute finished during 2nd transfer
        assert b.comp_start == b.arrival

    def test_makespan_zero_for_empty_plan(self):
        result = simulate(single_worker(), 1.0, ListScheduler([]))
        assert result.makespan == 0.0
        assert result.num_chunks == 0


class TestDynamicSemantics:
    def test_wait_without_outstanding_chunks_deadlocks(self):
        class BadSource(DispatchSource):
            def next_dispatch(self, view):
                return WAIT

        class BadScheduler(Scheduler):
            name = "bad"

            def create_source(self, platform, total_work):
                return BadSource()

        with pytest.raises(DeadlockError):
            simulate(single_worker(), 1.0, BadScheduler())

    def test_fast_engine_wait_without_outstanding_chunks_deadlocks(self):
        # Same contract violation, driven through simulate_fast directly:
        # the fast engine's WAIT handler must raise (not spin or hang)
        # when its future-completions heap is empty.
        class AlwaysWaitSource(DispatchSource):
            def next_dispatch(self, view):
                return WAIT

        class AlwaysWait(Scheduler):
            name = "always-wait"

            def create_source(self, platform, total_work):
                return AlwaysWaitSource()

        with pytest.raises(DeadlockError, match="WAIT with no outstanding chunk"):
            simulate_fast(single_worker(), 1.0, AlwaysWait(), NoError(), seed=0)

    def test_view_hides_future_completions(self):
        # A dynamic source sees a worker as busy until its chunk's real
        # completion time has passed.
        observations = []

        class Spy(DispatchSource):
            def __init__(self):
                self.step = 0

            def next_dispatch(self, view):
                self.step += 1
                if self.step == 1:
                    return Dispatch(worker=0, size=4.0)
                observations.append((view.now, view.pending_chunks(0)))
                if self.step == 2:
                    return WAIT
                return None

        class SpyScheduler(Scheduler):
            name = "spy"

            def create_source(self, platform, total_work):
                return Spy()

        p = single_worker(S=1.0, B=2.0)
        simulate(p, 4.0, SpyScheduler())
        # After the transfer (t=2) the chunk is still computing (ends t=6):
        assert observations[0] == (2.0, 1)
        # After the WAIT wake-up the completion is visible:
        assert observations[1] == (6.0, 0)

    def test_pending_work_accounting(self):
        sizes = []

        class Spy(DispatchSource):
            def __init__(self):
                self.step = 0

            def next_dispatch(self, view):
                self.step += 1
                if self.step <= 2:
                    return Dispatch(worker=0, size=3.0)
                sizes.append(view.pending_work(0))
                return None

        class SpyScheduler(Scheduler):
            name = "spy"

            def create_source(self, platform, total_work):
                return Spy()

        p = single_worker(S=1.0, B=1.0)
        simulate(p, 6.0, SpyScheduler())
        # At t=6 (after both transfers) the first chunk (ends t=6) is done,
        # the second (ends t=9) still pending.
        assert sizes == [3.0]


class TestErrorHandling:
    def test_nonpositive_work_rejected(self):
        with pytest.raises(ValueError):
            simulate(single_worker(), 0.0, ListScheduler([]))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            simulate(single_worker(), 1.0, ListScheduler([]), engine="quantum")

    def test_trace_requires_des(self):
        from repro.des import Monitor

        with pytest.raises(ValueError):
            simulate(single_worker(), 1.0, ListScheduler([]), trace=Monitor())

    def test_simulate_fast_entry_point(self):
        p = single_worker()
        result = simulate_fast(p, 2.0, ListScheduler([Dispatch(worker=0, size=2.0)]), NoError())
        assert result.num_chunks == 1


class TestMakespanOnlyMode:
    """collect_records=False must change allocation, never the trajectory."""

    def _platform(self, n=6):
        return PlatformSpec(
            [WorkerSpec(S=1.0, B=2.0, cLat=0.1, nLat=0.05, tLat=0.02)] * n
        )

    def test_records_empty_makespan_equal_static(self):
        from repro.core import UMR

        p = self._platform()
        full = simulate_fast(p, 200.0, UMR(), NoError(), seed=3)
        lean = simulate_fast(p, 200.0, UMR(), NoError(), seed=3, collect_records=False)
        assert lean.records == ()
        assert full.records  # the default still collects
        assert lean.makespan == full.makespan

    def test_dynamic_scheduler_trajectory_unchanged(self):
        # Factoring consults observed completions; the makespan-only mode
        # must feed it the identical view (same RNG consumption, same
        # decisions) at every error level.
        from repro.core import Factoring
        from repro.errors import make_error_model

        p = self._platform()
        for error in (0.0, 0.2, 0.4):
            model = make_error_model("normal", error)
            full = simulate_fast(p, 150.0, Factoring(), model, seed=11)
            model = make_error_model("normal", error)
            lean = simulate_fast(
                p, 150.0, Factoring(), model, seed=11, collect_records=False
            )
            assert lean.makespan == full.makespan
            assert lean.records == ()

    def test_metadata_preserved(self):
        p = self._platform(2)
        result = simulate_fast(
            p, 10.0, ListScheduler([Dispatch(worker=0, size=10.0)]), NoError(),
            seed=5, collect_records=False,
        )
        assert result.scheduler_name == "list"
        assert result.seed == 5
        assert result.total_work == 10.0


class TestObservedCompletionsLazyMerge:
    def test_notes_sorted_and_filtered_by_now(self):
        # Interleave dispatches to two workers so realized completion times
        # arrive out of global order, then check the merged view at several
        # decision times.
        p = PlatformSpec([
            WorkerSpec(S=10.0, B=10.0),   # fast worker: finishes early
            WorkerSpec(S=0.5, B=10.0),    # slow worker
        ])
        sched = ListScheduler([
            Dispatch(worker=1, size=2.0),  # slow chunk first on the link
            Dispatch(worker=0, size=2.0),
            Dispatch(worker=1, size=1.0),
            Dispatch(worker=0, size=1.0),
        ])
        result = simulate_fast(p, 6.0, sched, NoError())
        times = [r.comp_end for r in result.records]
        assert times != sorted(times)  # out-of-order arrival is exercised

    def test_view_cache_invalidates_on_time_advance(self):
        observed = []

        class Peeker(DispatchSource):
            def __init__(self):
                self.step = 0

            def next_dispatch(self, view):
                self.step += 1
                observed.append(len(view.observed_completions()))
                # Call twice at the same decision point: cached result.
                assert view.observed_completions() is view.observed_completions()
                if self.step <= 3:
                    return Dispatch(worker=0, size=2.0)
                if observed[-1] < 3:
                    return WAIT
                return None

        class PeekScheduler(Scheduler):
            name = "peeker"

            def create_source(self, platform, total_work):
                return Peeker()

        simulate(single_worker(S=1.0, B=100.0), 6.0, PeekScheduler())
        assert observed[0] == 0
        assert observed[-1] == 3  # all completions eventually visible
        assert observed == sorted(observed)
