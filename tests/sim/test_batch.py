"""Tests for the vectorized batch simulator."""

import numpy as np
import pytest

from repro.core import UMR, MultiInstallment
from repro.core.umr import solve_umr
from repro.errors import NoError, NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate
from repro.sim.batch import simulate_static_batch

W = 1000.0


@pytest.fixture(scope="module")
def setup():
    p = homogeneous_platform(12, S=1.0, bandwidth_factor=1.6, cLat=0.3, nLat=0.1)
    plan = solve_umr(p, W).to_chunk_plan()
    return p, plan


class TestExactAgreement:
    def test_zero_error_matches_scalar_engine_exactly(self, setup):
        p, plan = setup
        scalar = simulate(p, W, UMR(), NoError()).makespan
        batch = simulate_static_batch(p, plan, error=0.0, seeds=[0, 1, 2])
        assert np.all(batch == scalar)

    def test_zero_error_matches_mi(self, setup):
        p, _ = setup
        mi = MultiInstallment(3)
        plan = mi.schedule(p, W).to_chunk_plan()
        scalar = simulate(p, W, mi, NoError()).makespan
        batch = simulate_static_batch(p, plan, error=0.0, seeds=[7])
        assert batch[0] == pytest.approx(scalar, rel=1e-12)

    def test_empty_plan(self, setup):
        p, _ = setup
        from repro.core.chunks import ChunkPlan

        assert np.all(simulate_static_batch(p, ChunkPlan([]), 0.2, [1, 2]) == 0.0)


class TestStatisticalAgreement:
    def test_means_match_scalar_engine(self, setup):
        # Same seeds, same spawned streams; truncation resampling order
        # differs, so compare distributions, not bits.
        p, plan = setup
        seeds = list(range(150))
        batch = simulate_static_batch(p, plan, error=0.3, seeds=seeds)
        scalar = np.array(
            [simulate(p, W, UMR(), NormalErrorModel(0.3), seed=s).makespan for s in seeds]
        )
        assert batch.mean() == pytest.approx(scalar.mean(), rel=0.01)
        assert batch.std() == pytest.approx(scalar.std(), rel=0.25)

    def test_bitwise_match_when_no_resampling_occurs(self, setup):
        # At small magnitude the truncation mask never fires, so the block
        # draw consumes the stream identically to the scalar loop.
        p, plan = setup
        seeds = [11, 12, 13]
        batch = simulate_static_batch(p, plan, error=0.05, seeds=seeds)
        for i, s in enumerate(seeds):
            scalar = simulate(p, W, UMR(), NormalErrorModel(0.05), seed=s).makespan
            assert batch[i] == scalar

    def test_divide_mode(self, setup):
        p, plan = setup
        seeds = [3, 4]
        batch = simulate_static_batch(p, plan, error=0.05, seeds=seeds, mode="divide")
        for i, s in enumerate(seeds):
            scalar = simulate(
                p, W, UMR(), NormalErrorModel(0.05, mode="divide"), seed=s
            ).makespan
            assert batch[i] == pytest.approx(scalar, rel=1e-12)

    def test_unknown_mode_rejected(self, setup):
        p, plan = setup
        with pytest.raises(ValueError):
            simulate_static_batch(p, plan, 0.1, [1], mode="sideways")


class TestThroughput:
    def test_batch_is_much_faster_than_scalar(self, setup):
        import time

        p, plan = setup
        seeds = list(range(400))
        t0 = time.perf_counter()
        simulate_static_batch(p, plan, error=0.3, seeds=seeds)
        batch_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        for s in seeds[:20]:
            simulate(p, W, UMR(), NormalErrorModel(0.3), seed=s)
        scalar_time = (time.perf_counter() - t0) / 20 * len(seeds)
        assert batch_time < scalar_time / 3  # conservative; typically 30x+
