"""Tests for SimResult accessors and schedule validation."""

import dataclasses

import pytest

from repro.core import RUMR, UMR
from repro.errors import NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate, validate_schedule

W = 1000.0


@pytest.fixture
def result(paper_platform):
    return simulate(paper_platform, W, RUMR(known_error=0.3), NormalErrorModel(0.3), seed=5)


def test_dispatched_work_matches_total(result):
    assert result.dispatched_work == pytest.approx(W, rel=1e-9)


def test_worker_records_partition_all_records(result):
    total = sum(len(result.worker_records(w)) for w in range(result.platform.N))
    assert total == result.num_chunks


def test_worker_busy_time_positive(result):
    assert all(result.worker_busy_time(w) > 0 for w in range(result.platform.N))


def test_utilization_in_unit_interval(result):
    assert 0.0 < result.utilization() <= 1.0


def test_phase_work_sums_to_total(result):
    assert sum(result.phase_work().values()) == pytest.approx(W, rel=1e-9)


def test_provenance_fields(result, paper_platform):
    assert result.scheduler_name == "RUMR"
    assert result.seed == 5
    assert result.platform == paper_platform
    assert result.total_work == W


def test_validate_catches_link_overlap(paper_platform):
    good = simulate(paper_platform, W, UMR())
    bad_records = list(good.records)
    r = bad_records[1]
    bad_records[1] = dataclasses.replace(r, send_start=r.send_start - 1.0)
    bad = dataclasses.replace(good, records=tuple(bad_records))
    with pytest.raises(AssertionError, match="link overlap"):
        validate_schedule(bad)


def test_validate_catches_compute_before_arrival(paper_platform):
    good = simulate(paper_platform, W, UMR())
    bad_records = list(good.records)
    r = bad_records[0]
    bad_records[0] = dataclasses.replace(r, comp_start=r.arrival - 0.5)
    bad = dataclasses.replace(good, records=tuple(bad_records))
    with pytest.raises(AssertionError):
        validate_schedule(bad)


def test_validate_catches_lost_work(paper_platform):
    good = simulate(paper_platform, W, UMR())
    bad = dataclasses.replace(good, total_work=W * 2)
    with pytest.raises(AssertionError, match="dispatched"):
        validate_schedule(bad)


def test_validate_catches_wrong_makespan(paper_platform):
    good = simulate(paper_platform, W, UMR())
    bad = dataclasses.replace(good, makespan=good.makespan / 2)
    with pytest.raises(AssertionError, match="makespan"):
        validate_schedule(bad)
