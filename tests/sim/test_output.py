"""Tests for the output-data (result return) simulation engine."""

import pytest

from repro.core import RUMR, UMR, Factoring
from repro.errors import NoError, NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate
from repro.sim.output import simulate_with_output

W = 500.0


def platform(n=8, cLat=0.2, nLat=0.1):
    return homogeneous_platform(n, S=1.0, bandwidth_factor=1.5, cLat=cLat, nLat=nLat)


class TestZeroRatioEquivalence:
    @pytest.mark.parametrize("sched_factory", [UMR, Factoring], ids=["UMR", "Factoring"])
    def test_matches_standard_engine_exactly(self, sched_factory):
        p = platform()
        a = simulate(p, W, sched_factory(), NormalErrorModel(0.3), seed=4)
        b = simulate_with_output(
            p, W, sched_factory(), NormalErrorModel(0.3), output_ratio=0.0, seed=4
        )
        assert b.makespan == a.makespan
        assert b.compute_makespan == a.makespan
        assert b.returns == ()
        assert len(b.records) == len(a.records)

    def test_to_sim_result_roundtrip(self):
        p = platform()
        b = simulate_with_output(p, W, UMR(), NoError(), output_ratio=0.0)
        sim = b.to_sim_result()
        assert sim.makespan == b.compute_makespan
        assert sim.num_chunks == len(b.records)


class TestReturnTraffic:
    def test_every_chunk_produces_one_return(self):
        p = platform()
        r = simulate_with_output(p, W, UMR(), NoError(), output_ratio=0.2)
        assert len(r.returns) == len(r.records)

    def test_return_sizes_scale_with_ratio(self):
        p = platform()
        r = simulate_with_output(p, W, UMR(), NoError(), output_ratio=0.25)
        by_index = {rec.index: rec.size for rec in r.records}
        for ret in r.returns:
            assert ret.output_size == pytest.approx(0.25 * by_index[ret.chunk_index])

    def test_makespan_monotone_in_ratio(self):
        p = platform()
        spans = [
            simulate_with_output(p, W, UMR(), NoError(), output_ratio=ratio).makespan
            for ratio in (0.0, 0.2, 0.5, 1.0)
        ]
        assert spans == sorted(spans)

    def test_returns_start_after_compute(self):
        p = platform()
        r = simulate_with_output(p, W, UMR(), NoError(), output_ratio=0.3)
        ends = {rec.index: rec.comp_end for rec in r.records}
        for ret in r.returns:
            assert ret.link_start >= ends[ret.chunk_index] - 1e-12

    def test_link_serialization_includes_returns(self):
        # No two link occupations (sends or returns) overlap.
        p = platform()
        r = simulate_with_output(p, W, UMR(), NoError(), output_ratio=0.5)
        intervals = [(rec.send_start, rec.send_end) for rec in r.records]
        intervals += [(ret.link_start, ret.link_end) for ret in r.returns]
        intervals.sort()
        for (a0, a1), (b0, b1) in zip(intervals, intervals[1:]):
            assert b0 >= a1 - 1e-9

    def test_makespan_includes_last_return(self):
        p = platform()
        r = simulate_with_output(p, W, UMR(), NoError(), output_ratio=0.5)
        assert r.makespan >= r.compute_makespan
        assert r.makespan == pytest.approx(
            max(ret.received for ret in r.returns)
        )

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            simulate_with_output(platform(), W, UMR(), NoError(), output_ratio=-0.1)


class TestMultiPort:
    def test_default_is_one_port(self):
        p = platform()
        a = simulate_with_output(p, W, UMR(), NoError(), output_ratio=0.0)
        b = simulate_with_output(p, W, UMR(), NoError(), output_ratio=0.0, ports=1)
        assert a.makespan == b.makespan

    def test_extra_ports_never_hurt_static_plans(self):
        p = homogeneous_platform(12, S=1.0, bandwidth_factor=1.3, cLat=0.2, nLat=0.3)
        spans = [
            simulate_with_output(
                p, W, UMR(), NoError(), output_ratio=0.0, ports=k
            ).makespan
            for k in (1, 2, 4, 8)
        ]
        assert spans == sorted(spans, reverse=True)

    def test_multiport_helps_at_high_nlat(self):
        # The paper's conjecture (§3.1): simultaneous transfers could be
        # beneficial — most visibly where per-transfer latency dominates.
        p = homogeneous_platform(12, S=1.0, bandwidth_factor=1.3, cLat=0.2, nLat=0.3)
        one = simulate_with_output(p, W, UMR(), NoError(), output_ratio=0.0, ports=1)
        four = simulate_with_output(p, W, UMR(), NoError(), output_ratio=0.0, ports=4)
        assert four.makespan < 0.95 * one.makespan

    def test_concurrent_link_occupancy_bounded_by_ports(self):
        p = platform()
        r = simulate_with_output(p, W, UMR(), NoError(), output_ratio=0.3, ports=2)
        events = []
        for rec in r.records:
            events.append((rec.send_start, 1))
            events.append((rec.send_end, -1))
        for ret in r.returns:
            events.append((ret.link_start, 1))
            events.append((ret.link_end, -1))
        # Process releases before grants at equal timestamps (the
        # resource hands a freed port over at the same instant).
        events.sort(key=lambda e: (e[0], e[1]))
        concurrent = peak = 0
        for _, delta in events:
            concurrent += delta
            peak = max(peak, concurrent)
        assert peak <= 2

    def test_bad_ports_rejected(self):
        with pytest.raises(ValueError):
            simulate_with_output(platform(), W, UMR(), NoError(), output_ratio=0.0, ports=0)

    def test_multiport_with_returns_and_errors(self):
        p = platform()
        r = simulate_with_output(
            p, W, RUMR(known_error=0.3), NormalErrorModel(0.3),
            output_ratio=0.3, ports=3, seed=5,
        )
        assert r.makespan > 0
        assert sum(rec.size for rec in r.records) == pytest.approx(W, rel=1e-9)


class TestSchedulersUnderOutputTraffic:
    def test_dynamic_schedulers_run(self):
        p = platform()
        for sched in (Factoring(), RUMR(known_error=0.3)):
            r = simulate_with_output(
                p, W, sched, NormalErrorModel(0.3), output_ratio=0.3, seed=2
            )
            assert r.makespan > 0
            assert sum(rec.size for rec in r.records) == pytest.approx(W, rel=1e-9)

    def test_rumr_advantage_survives_moderate_output(self):
        import statistics

        p = platform()
        err = 0.4

        def mean(sched_factory):
            return statistics.mean(
                simulate_with_output(
                    p, W, sched_factory(), NormalErrorModel(err), output_ratio=0.2, seed=s
                ).makespan
                for s in range(10)
            )

        assert mean(lambda: RUMR(known_error=err)) < mean(UMR)
