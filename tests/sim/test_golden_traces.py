"""Golden-trace regression: canonical event streams reproduce byte-for-byte.

``tests/data/golden_trace_rumr.jsonl`` and
``tests/data/golden_trace_factoring.jsonl`` pin the *full canonical event
stream* (JSONL, sorted keys, shortest-roundtrip floats) of one
fault-injected RUMR run and one fault-free Factoring run.  Where the
golden fault sweep pins only makespans, these files pin every dispatch,
computation, fault, recovery decision and round boundary — any change to
RNG stream layout, event emission order, canonical sorting or float
arithmetic shows up as a byte diff naming the first divergent line.

``golden_trace_chain.jsonl`` and ``golden_trace_sharedbw.jsonl`` extend
the pin to the topology layer: a fault-injected RUMR run over a
store-and-forward daisy chain (every relay hop shows up as a ``link_hop``
event, lost chunks still ride the links as ghosts) and a fault-free
Factoring run on a shared-bandwidth star (fluid max-min bandwidth
sharing, DES only).  Any drift in relay-delay arithmetic, hop-event
emission, or the water-filling allocator is a byte diff here.

To regenerate after an *intentional* semantics change::

    PYTHONPATH=src python -c "
    from tests.sim.test_golden_traces import GOLDEN_DIR, SCENARIOS, render_scenario
    for name in SCENARIOS:
        (GOLDEN_DIR / f'golden_trace_{name}.jsonl').write_text(render_scenario(name))
    "
"""

import pathlib

import pytest

from repro.core import RUMR, Factoring
from repro.errors import NoError, NormalErrorModel
from repro.obs import Tracer, events_to_jsonl
from repro.platform import homogeneous_platform
from repro.sim import simulate

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "data"

# One recovery-aware fault-injected cell and one fault-free dynamic cell;
# both small enough to read by eye, big enough to exercise every event
# kind (the RUMR run covers fault + recovery_decision + round_boundary).
SCENARIOS = {
    "rumr": dict(
        scheduler=lambda: RUMR(known_error=0.3),
        model=lambda: NormalErrorModel(0.3),
        faults="crash:p=0.6,tmax=60",
        n=5, work=400.0, seed=2003,
    ),
    "factoring": dict(
        scheduler=lambda: Factoring(),
        model=lambda: NoError(),
        faults=None,
        n=4, work=300.0, seed=610,
    ),
    # Topology cells: a crash-injected chain (relay hops + ghost chunks)
    # and a fault-free shared-bandwidth star (the fluid allocator's
    # entire decision sequence is visible through the timeline floats).
    "chain": dict(
        scheduler=lambda: RUMR(known_error=0.3),
        model=lambda: NormalErrorModel(0.3),
        faults="crash:p=0.6,tmax=60",
        n=5, work=400.0, seed=2003,
        topology="chain:relay=sf",
    ),
    "sharedbw": dict(
        scheduler=lambda: Factoring(),
        model=lambda: NormalErrorModel(0.2),
        faults=None,
        n=4, work=300.0, seed=610,
        topology="sharedbw:cap=2.5",
    ),
}


def render_scenario(name: str) -> str:
    """The scenario's canonical event stream, serialized as JSONL."""
    spec = SCENARIOS[name]
    platform = homogeneous_platform(
        spec["n"], S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1
    )
    tracer = Tracer()
    simulate(
        platform, spec["work"], spec["scheduler"](), spec["model"](),
        seed=spec["seed"], faults=spec["faults"], tracer=tracer,
        topology=spec.get("topology"),
    )
    return events_to_jsonl(tracer.canonical())


def _scenario_params():
    return [
        pytest.param(
            name,
            marks=(pytest.mark.topology,) if "topology" in SCENARIOS[name] else (),
        )
        for name in sorted(SCENARIOS)
    ]


@pytest.mark.parametrize("name", _scenario_params())
def test_trace_matches_golden_bytes(name):
    golden_path = GOLDEN_DIR / f"golden_trace_{name}.jsonl"
    assert golden_path.exists(), (
        f"{golden_path} missing — run the regeneration snippet in this "
        "module's docstring"
    )
    golden = golden_path.read_text()
    rendered = render_scenario(name)
    if rendered != golden:
        golden_lines = golden.splitlines()
        new_lines = rendered.splitlines()
        for i, (a, b) in enumerate(zip(golden_lines, new_lines)):
            if a != b:
                pytest.fail(
                    f"golden trace {name!r} diverges at line {i}:\n"
                    f"  golden: {a}\n  now:    {b}"
                )
        pytest.fail(
            f"golden trace {name!r} length changed: "
            f"{len(golden_lines)} -> {len(new_lines)} events"
        )


def test_golden_rumr_covers_every_event_kind():
    # The pinned RUMR scenario must keep exercising the full vocabulary;
    # if a regeneration loses a kind, the regression has gone blind to it.
    import json

    kinds = {
        json.loads(line)["kind"]
        for line in (GOLDEN_DIR / "golden_trace_rumr.jsonl").read_text().splitlines()
    }
    assert kinds >= {
        "dispatch_start", "dispatch_end", "comp_start", "comp_end",
        "fault", "recovery_decision", "round_boundary",
    }


@pytest.mark.topology
def test_golden_chain_covers_relay_traffic():
    # The chain pin is only worth keeping if relays actually fired: it
    # must carry link_hop events alongside faults (ghost chunks included).
    import json

    kinds = {
        json.loads(line)["kind"]
        for line in (GOLDEN_DIR / "golden_trace_chain.jsonl").read_text().splitlines()
    }
    assert kinds >= {"dispatch_start", "dispatch_end", "link_hop", "fault"}
