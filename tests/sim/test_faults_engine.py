"""Fault injection through the engines and recovery-aware scheduling.

Covers the loss semantics contract (what counts as lost, when the master
observes it) and the recovery behaviour of the dynamic schedulers:
Factoring, WeightedFactoring and RUMR re-absorb lost work and finish the
full workload as long as one worker survives.  The headline acceptance
check: a worker that crashes at t=0 is *exactly* equivalent to a platform
that never had it.
"""

import math

import pytest

from repro.core import RUMR, UMR, EqualSplit, Factoring, WeightedFactoring
from repro.errors import NoError, NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate, validate_schedule

W = 300.0


@pytest.fixture
def platform():
    return homogeneous_platform(5, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1)


RECOVERY_SCHEDULERS = [
    lambda: Factoring(),
    lambda: RUMR(known_error=0.2),
    lambda: WeightedFactoring(),
]
RECOVERY_IDS = ["Factoring", "RUMR", "WeightedFactoring"]


class TestCrashAtZeroEquivalence:
    """Crash at t=0 == the same platform without that worker."""

    @pytest.mark.parametrize("make", RECOVERY_SCHEDULERS, ids=RECOVERY_IDS)
    @pytest.mark.parametrize("engine", ["fast", "des"])
    def test_equivalent_to_smaller_platform(self, make, engine, platform):
        crashed = simulate(
            platform, W, make(), NoError(), seed=1, engine=engine,
            faults="crash:worker=0,at=0",
        )
        reduced = simulate(
            platform.subset([1, 2, 3, 4]), W, make(), NoError(), seed=1, engine=engine,
        )
        assert crashed.makespan == reduced.makespan
        assert crashed.delivered_work == pytest.approx(W, rel=1e-9)
        # The surviving workers run the identical chunk sequence.
        live = [r for r in crashed.records if not r.lost]
        assert [r.size for r in live] == [r.size for r in reduced.records]
        assert [r.worker - 1 for r in live] == [r.worker for r in reduced.records]

    def test_no_chunk_ever_sent_to_the_dead_worker(self, platform):
        for make in RECOVERY_SCHEDULERS:
            result = simulate(
                platform, W, make(), NoError(), seed=1, engine="fast",
                faults="crash:worker=2,at=0",
            )
            assert all(r.worker != 2 for r in result.records)


class TestLossSemantics:
    def test_chunk_finishing_after_crash_is_lost(self, platform):
        result = simulate(
            platform, W, UMR(), NoError(), seed=0, engine="fast",
            faults="crash:worker=1,at=40",
        )
        for r in result.records:
            if r.worker == 1:
                assert r.lost == (r.comp_end > 40.0)
            else:
                assert not r.lost

    def test_work_lost_matches_lost_records(self, platform):
        result = simulate(
            platform, W, UMR(), NormalErrorModel(0.2), seed=4, engine="fast",
            faults="crash:p=0.5,tmax=60",
        )
        lost = sum(r.size for r in result.records if r.lost)
        assert result.work_lost == pytest.approx(lost, rel=1e-12)
        assert result.delivered_work == pytest.approx(
            result.dispatched_work - lost, rel=1e-12
        )

    def test_static_scheduler_does_not_recover(self, platform):
        # UMR/EqualSplit have no recovery path: the crashed worker's share
        # is simply gone.
        for sched in (UMR(), EqualSplit()):
            result = simulate(
                platform, W, sched, NoError(), seed=0, engine="fast",
                faults="crash:worker=1,at=10",
            )
            assert result.work_lost > 0.0
            assert result.delivered_work < W
            validate_schedule(result)

    def test_makespan_over_delivered_chunks_only(self, platform):
        result = simulate(
            platform, W, UMR(), NoError(), seed=0, engine="fast",
            faults="crash:worker=1,at=40",
        )
        delivered_end = max(r.comp_end for r in result.records if not r.lost)
        assert result.makespan == delivered_end

    def test_fault_free_run_unchanged_by_fault_plumbing(self, platform):
        # faults="none" must take the exact legacy code path: bit-identical
        # to not passing faults at all.
        base = simulate(platform, W, RUMR(known_error=0.3), NormalErrorModel(0.3), seed=9)
        none = simulate(
            platform, W, RUMR(known_error=0.3), NormalErrorModel(0.3), seed=9,
            faults="none",
        )
        assert base.makespan == none.makespan
        assert base.records == none.records

    def test_error_streams_unperturbed_by_fault_stream(self, platform):
        # The fault stream is the *third* spawn of the run seed: adding a
        # fault scenario must not shift the comm/comp error draws.  With a
        # crash that never fires (at far future), the trajectory matches
        # the fault-free run exactly.
        base = simulate(platform, W, Factoring(), NormalErrorModel(0.3), seed=9)
        futur = simulate(
            platform, W, Factoring(), NormalErrorModel(0.3), seed=9,
            faults="crash:worker=0,at=1e9",
        )
        assert base.makespan == futur.makespan
        assert [r.size for r in base.records] == [r.size for r in futur.records]


class TestRecovery:
    @pytest.mark.parametrize("make", RECOVERY_SCHEDULERS, ids=RECOVERY_IDS)
    @pytest.mark.parametrize("at", [5.0, 20.0, 60.0])
    def test_all_work_delivered_after_mid_run_crash(self, make, at, platform):
        result = simulate(
            platform, W, make(), NormalErrorModel(0.2), seed=7, engine="fast",
            faults=f"crash:worker=1,at={at}",
        )
        assert result.delivered_work == pytest.approx(W, rel=1e-9)
        validate_schedule(result)

    @pytest.mark.parametrize("make", RECOVERY_SCHEDULERS, ids=RECOVERY_IDS)
    def test_survives_multiple_crashes(self, make, platform):
        # spare_one guarantees a survivor even at p=1.
        result = simulate(
            platform, W, make(), NoError(), seed=3, engine="fast",
            faults="crash:p=1,tmax=50",
        )
        assert result.delivered_work == pytest.approx(W, rel=1e-9)

    @pytest.mark.parametrize("make", RECOVERY_SCHEDULERS, ids=RECOVERY_IDS)
    def test_no_dispatch_to_observed_crashed_worker(self, make, platform):
        # After a worker's first loss is observed, no later-decided chunk
        # targets it.  Records are appended in decision order, so every
        # record to the crashed worker must precede the first record to a
        # live worker decided after the loss observation.
        result = simulate(
            platform, W, make(), NoError(), seed=3, engine="fast",
            faults="crash:worker=1,at=30",
        )
        losses = [r for r in result.records if r.lost]
        if not losses:
            pytest.skip("crash after completion for this configuration")
        # Loss observation happens at max(crash, arrival); any dispatch
        # *sent* after every loss was observed must avoid worker 1.
        last_observed = max(max(30.0, r.arrival) for r in losses)
        for r in result.records:
            if r.send_start > last_observed:
                assert r.worker != 1

    def test_recovery_makespan_bounded_by_reduced_platform(self, platform):
        # Losing a worker mid-run can never beat having started without it
        # by much — sanity-bound the recovery cost: the crashed run should
        # be within 25% of the (N-1)-worker run (empirically ~1.0-1.1x).
        for make in RECOVERY_SCHEDULERS:
            crashed = simulate(
                platform, W, make(), NoError(), seed=1, engine="fast",
                faults="crash:worker=0,at=30",
            ).makespan
            reduced = simulate(
                platform.subset([1, 2, 3, 4]), W, make(), NoError(), seed=1,
                engine="fast",
            ).makespan
            assert crashed <= reduced * 1.25

    def test_rumr_crash_during_phase2(self, platform):
        # A crash late enough to land in RUMR's factoring phase exercises
        # the phase-2 source's own recovery path (no fallback rebuild).
        result = simulate(
            platform, W, RUMR(known_error=0.3), NormalErrorModel(0.3), seed=11,
            engine="fast", faults="crash:worker=3,at=80",
        )
        assert result.delivered_work == pytest.approx(W, rel=1e-9)
        phases = {r.phase for r in result.records}
        assert any("umr" in p or "round" in p for p in phases) or len(phases) > 1


class TestNonCrashFaults:
    def test_pause_delays_makespan(self, platform):
        base = simulate(platform, W, UMR(), NoError(), seed=0, engine="fast").makespan
        paused = simulate(
            platform, W, UMR(), NoError(), seed=0, engine="fast",
            faults="pause:p=1,tmax=0,dur=25",
        ).makespan
        assert paused > base
        assert paused <= base + 25.0 + 1e-9

    def test_slowdown_stretches_makespan(self, platform):
        base = simulate(platform, W, UMR(), NoError(), seed=0, engine="fast").makespan
        slowed = simulate(
            platform, W, UMR(), NoError(), seed=0, engine="fast",
            faults="slow:p=1,tmax=0,factor=2",
        ).makespan
        assert slowed > base

    def test_spike_adds_link_occupancy(self, platform):
        base = simulate(platform, W, Factoring(), NoError(), seed=0, engine="fast")
        spiked = simulate(
            platform, W, Factoring(), NoError(), seed=0, engine="fast",
            faults="spike:p=1,delay=3",
        )
        # Every transfer occupies the link 3s longer.
        first = spiked.records[0]
        base_first = base.records[0]
        assert first.send_end - first.send_start == pytest.approx(
            (base_first.send_end - base_first.send_start) + 3.0, rel=1e-9
        )
        assert spiked.makespan > base.makespan
        assert spiked.work_lost == 0.0

    def test_non_crash_faults_lose_no_work(self, platform):
        for spec in ("pause:p=1,tmax=50,dur=20", "slow:p=1,tmax=50,factor=3",
                     "spike:p=0.5,delay=4"):
            result = simulate(
                platform, W, Factoring(), NoError(), seed=2, engine="fast",
                faults=spec,
            )
            assert result.work_lost == 0.0
            assert result.delivered_work == pytest.approx(W, rel=1e-9)
