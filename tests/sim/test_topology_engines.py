"""Engine-level behavior of the topology layer.

The exact cross-engine equality lives in ``test_differential.py``; this
module covers the behaviors that are not equality claims: relay delays
actually delaying things, ``link_hop`` emission, the sharedbw routing
and rejection rules, and fault interaction on relayed paths.
"""

import math

import pytest

from repro.core import RUMR, Factoring
from repro.errors import NoError, NormalErrorModel
from repro.obs import Tracer
from repro.platform import homogeneous_platform, make_topology
from repro.sim import simulate, validate_schedule
from repro.sim.engine import simulate_des
from repro.sim.fastsim import simulate_fast

pytestmark = pytest.mark.topology


def _platform(n=4):
    return homogeneous_platform(n, bandwidth_factor=1.5, cLat=0.2, nLat=0.1)


class TestRelayDelays:
    def test_chain_is_slower_than_star(self):
        p = _platform()
        star = simulate(p, 400.0, Factoring(), NoError())
        for spec in ("chain:relay=sf", "chain:relay=ct", "tree:fanout=2"):
            shaped = simulate(p, 400.0, Factoring(), NoError(), topology=spec)
            assert shaped.makespan > star.makespan, spec

    def test_sf_no_faster_than_ct(self):
        # Store-and-forward serializes every hop; cut-through only the
        # first link.  Same platform, same plan: sf can never win.
        p = _platform(6)
        sf = simulate(p, 400.0, RUMR(known_error=0.0), NoError(),
                      topology="chain:relay=sf")
        ct = simulate(p, 400.0, RUMR(known_error=0.0), NoError(),
                      topology="chain:relay=ct")
        assert sf.makespan >= ct.makespan

    def test_arrival_includes_relay_time(self):
        p = _platform()
        result = simulate(p, 400.0, Factoring(), NoError(),
                          topology="chain:relay=sf")
        bound = make_topology("chain:relay=sf").bind(p)
        for r in result.records:
            hops = bound.paths[r.worker].hops
            lower = sum(h.hop_time(r.size) for h in hops)
            assert r.arrival >= r.send_end + lower - 1e-12

    def test_topology_recorded_on_result(self):
        p = _platform()
        r = simulate(p, 200.0, Factoring(), NoError(), topology="tree:fanout=2")
        assert r.topology == "tree:fanout=2"
        assert simulate(p, 200.0, Factoring(), NoError()).topology == "star"


class TestLinkHopEvents:
    def test_chain_emits_link_hops_on_both_engines(self):
        p = _platform()
        for engine in ("fast", "des"):
            tracer = Tracer()
            simulate(p, 300.0, Factoring(), NoError(), engine=engine,
                     topology="chain:relay=sf", tracer=tracer)
            hops = [e for e in tracer.canonical() if e.kind == "link_hop"]
            assert hops, engine
            assert all(e.detail.startswith("link=") for e in hops)

    def test_star_emits_none(self):
        tracer = Tracer()
        simulate(_platform(), 300.0, Factoring(), NoError(),
                 topology="star", tracer=tracer)
        assert not any(e.kind == "link_hop" for e in tracer.canonical())

    def test_cut_through_emits_none(self):
        # ct paths have no contended relay resources, hence no hop events.
        tracer = Tracer()
        simulate(_platform(), 300.0, Factoring(), NoError(),
                 topology="chain:relay=ct", tracer=tracer)
        assert not any(e.kind == "link_hop" for e in tracer.canonical())


class TestSharedBandwidth:
    def test_fast_engine_declines(self):
        with pytest.raises(ValueError, match="DES"):
            simulate_fast(_platform(), 200.0, Factoring(), NoError(),
                          topology=make_topology("sharedbw:cap=2"))

    def test_simulate_reroutes_fast_to_des(self):
        p = _platform()
        via_fast = simulate(p, 200.0, Factoring(), NormalErrorModel(0.2),
                            seed=7, engine="fast", topology="sharedbw:cap=2")
        via_des = simulate(p, 200.0, Factoring(), NormalErrorModel(0.2),
                           seed=7, engine="des", topology="sharedbw:cap=2")
        assert via_fast.makespan == via_des.makespan
        assert via_fast.records == via_des.records

    def test_tighter_cap_never_faster(self):
        p = _platform()
        wide = simulate(p, 300.0, Factoring(), NoError(), topology="sharedbw:cap=24")
        tight = simulate(p, 300.0, Factoring(), NoError(), topology="sharedbw:cap=1.5")
        assert tight.makespan >= wide.makespan

    def test_schedule_validates_without_link_serialization(self):
        # Concurrent transfers overlap by design; validate_schedule must
        # accept the run (it skips the exclusive-link assertion).
        result = simulate(_platform(), 300.0, Factoring(), NormalErrorModel(0.3),
                          seed=11, topology="sharedbw:cap=2")
        validate_schedule(result, rel_tol=1e-7)
        assert result.topology == "sharedbw:cap=2"

    def test_faults_rejected(self):
        with pytest.raises(ValueError, match="fault"):
            simulate(_platform(), 200.0, Factoring(), NoError(),
                     topology="sharedbw:cap=2", faults="crash:worker=0,at=25")


class TestFaultsOnRelays:
    @pytest.mark.parametrize("spec", ["chain:relay=sf", "chain:relay=ct",
                                      "tree:fanout=2"])
    def test_crash_recovery_completes(self, spec):
        p = _platform(5)
        result = simulate(p, 400.0, RUMR(known_error=0.3), NormalErrorModel(0.3),
                          seed=2003, faults="crash:worker=1,at=30", topology=spec)
        validate_schedule(result, rel_tol=1e-7)
        lost = sum(r.size for r in result.records if r.lost)
        delivered = sum(r.size for r in result.records if not r.lost)
        assert delivered == pytest.approx(400.0, rel=1e-7)
        assert math.isfinite(result.makespan)
        assert lost >= 0.0

    def test_validation_covers_relay_runs(self):
        result = simulate_des(_platform(), 300.0, Factoring(),
                              NormalErrorModel(0.2), seed=5,
                              topology=make_topology("chain:relay=sf"))
        validate_schedule(result, rel_tol=1e-7)
