"""Tests for the Gantt renderer and utilization profile."""

import pytest

from repro.core import RUMR, UMR
from repro.errors import NoError, NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate
from repro.sim.gantt import render_gantt, utilization_profile

W = 500.0


@pytest.fixture
def result():
    p = homogeneous_platform(4, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1)
    return simulate(p, W, RUMR(known_error=0.3), NormalErrorModel(0.3), seed=1)


def test_gantt_has_one_row_per_worker_plus_link(result):
    text = render_gantt(result)
    lines = text.splitlines()
    assert sum(1 for line in lines if "|" in line) == result.platform.N + 1
    assert "link" in text


def test_gantt_shows_both_phase_marks(result):
    text = render_gantt(result)
    assert "#" in text  # phase 1
    assert "+" in text  # factoring tail


def test_gantt_empty_schedule():
    p = homogeneous_platform(2, S=1.0, B=4.0)

    class Null(UMR):
        def create_source(self, platform, total_work):
            from repro.core.base import StaticPlanSource

            return StaticPlanSource([])

    result = simulate(p, 1.0, Null())
    assert "empty" in render_gantt(result)


def test_gantt_width_respected(result):
    text = render_gantt(result, width=40)
    rows = [line for line in text.splitlines() if line.strip().startswith(("w", "link"))]
    assert all(len(line) <= 40 + 12 for line in rows)


def test_utilization_profile_bounds(result):
    profile = utilization_profile(result, buckets=10)
    assert len(profile) == 10
    assert all(0.0 <= v <= 1.0 + 1e-9 for v in profile)


def test_utilization_ramps_up_from_pipeline_fill(paper_platform):
    # The first slice includes the serial distribution of round 0: it must
    # be less utilized than the middle of the run.
    result = simulate(paper_platform, 1000.0, UMR(), NoError())
    profile = utilization_profile(result, buckets=10)
    assert profile[0] < max(profile[3:7])


def test_profile_integral_matches_busy_time(result):
    profile = utilization_profile(result, buckets=50)
    n = result.platform.N
    slice_len = result.makespan / 50
    integral = sum(v * slice_len * n for v in profile)
    busy = sum(r.comp_time for r in result.records)
    assert integral == pytest.approx(busy, rel=1e-9)
