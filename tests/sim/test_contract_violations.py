"""Tests that the engines reject scheduler contract violations loudly."""

import pytest

from repro.core.base import Dispatch, DispatchSource, Scheduler
from repro.platform import homogeneous_platform
from repro.sim import simulate


def make_scheduler(source_factory):
    class Bad(Scheduler):
        name = "bad"

        def create_source(self, platform, total_work):
            return source_factory()

    return Bad()


class _OutOfRange(DispatchSource):
    def __init__(self):
        self.fired = False

    def next_dispatch(self, view):
        if self.fired:
            return None
        self.fired = True
        return Dispatch(worker=99, size=1.0)


class _WrongType(DispatchSource):
    def next_dispatch(self, view):
        return "send something somewhere"


@pytest.mark.parametrize("engine", ["fast", "des"])
class TestContractViolations:
    def test_out_of_range_worker_rejected(self, engine):
        p = homogeneous_platform(4, S=1.0, B=8.0)
        with pytest.raises(ValueError, match="outside the platform"):
            simulate(p, 10.0, make_scheduler(_OutOfRange), engine=engine)

    def test_wrong_return_type_rejected(self, engine):
        p = homogeneous_platform(4, S=1.0, B=8.0)
        with pytest.raises(TypeError, match="expected Dispatch"):
            simulate(p, 10.0, make_scheduler(_WrongType), engine=engine)

    def test_zero_size_dispatch_rejected_at_construction(self, engine):
        with pytest.raises(ValueError):
            Dispatch(worker=0, size=0.0)
