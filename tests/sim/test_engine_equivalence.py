"""DES trace-monitor checks.

The fast-vs-DES trajectory-equality suite lives in
``tests/sim/test_differential.py`` (curated cases plus a seeded randomized
harness over schedulers, errors and fault scenarios).  What remains here
are the monitor-specific checks that only the DES engine can provide.
"""

from repro.core import UMR
from repro.des import Monitor
from repro.errors import NoError
from repro.sim import simulate

W = 1000.0


def test_des_trace_monitor_is_populated(paper_platform):
    mon = Monitor()
    simulate(paper_platform, W, UMR(), NoError(), engine="des", trace=mon)
    kinds = {r.kind for r in mon}
    assert {"send_start", "send_end", "arrival", "compute_start", "compute_end"} <= kinds
    sends = mon.of_kind("send_start")
    assert len(sends) == len(mon.of_kind("compute_end"))


def test_des_trace_times_match_records(small_platform):
    mon = Monitor()
    result = simulate(small_platform, W, UMR(), NoError(), engine="des", trace=mon)
    ends = sorted(r.time for r in mon.of_kind("compute_end"))
    assert ends[-1] == result.makespan
