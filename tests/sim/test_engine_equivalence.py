"""Cross-validation: the DES engine and the fast engine are trajectory-identical."""

import pytest

from repro.core import (
    RUMR,
    UMR,
    EqualSplit,
    Factoring,
    FixedSizeChunking,
    MultiInstallment,
    OneRound,
)
from repro.des import Monitor
from repro.errors import NoError, NormalErrorModel, UniformErrorModel
from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform
from repro.sim import simulate, validate_schedule

W = 1000.0

ALL_SCHEDULERS = [
    UMR(),
    RUMR(known_error=0.3),
    RUMR(known_error=0.3, out_of_order=False),
    RUMR(known_error=1.5),
    RUMR(phase1_fraction=0.7),
    Factoring(),
    FixedSizeChunking(known_error=0.3),
    MultiInstallment(1),
    MultiInstallment(3),
    OneRound(),
    EqualSplit(),
]


def assert_identical(platform, scheduler, error_model, seed):
    fast = simulate(platform, W, scheduler, error_model, seed=seed, engine="fast")
    des = simulate(platform, W, scheduler, error_model, seed=seed, engine="des")
    assert fast.makespan == des.makespan
    assert fast.num_chunks == des.num_chunks
    for a, b in zip(fast.records, des.records):
        assert a.worker == b.worker
        assert a.size == b.size
        assert a.send_start == b.send_start
        assert a.send_end == b.send_end
        assert a.arrival == b.arrival
        assert a.comp_start == b.comp_start
        assert a.comp_end == b.comp_end
    validate_schedule(fast)
    validate_schedule(des)


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
def test_engines_identical_no_error(scheduler, paper_platform):
    assert_identical(paper_platform, scheduler, NoError(), None)


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
def test_engines_identical_normal_error(scheduler, paper_platform):
    assert_identical(paper_platform, scheduler, NormalErrorModel(0.3), 42)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_engines_identical_across_seeds(seed, small_platform):
    assert_identical(small_platform, RUMR(known_error=0.4), NormalErrorModel(0.4), seed)


def test_engines_identical_uniform_error(paper_platform):
    assert_identical(paper_platform, Factoring(), UniformErrorModel(0.3), 7)


def test_engines_identical_heterogeneous(hetero_platform):
    for scheduler in (UMR(), Factoring(), RUMR(known_error=0.2)):
        assert_identical(hetero_platform, scheduler, NormalErrorModel(0.2), 3)


def test_engines_identical_with_tlat():
    p = PlatformSpec([WorkerSpec(S=1.0, B=10.0, cLat=0.1, nLat=0.1, tLat=0.4)] * 4)
    assert_identical(p, UMR(), NormalErrorModel(0.2), 11)
    assert_identical(p, Factoring(), NormalErrorModel(0.2), 11)


def test_engines_identical_divide_mode(paper_platform):
    assert_identical(
        paper_platform, RUMR(known_error=0.3), NormalErrorModel(0.3, mode="divide"), 13
    )


def test_des_trace_monitor_is_populated(paper_platform):
    mon = Monitor()
    simulate(paper_platform, W, UMR(), NoError(), engine="des", trace=mon)
    kinds = {r.kind for r in mon}
    assert {"send_start", "send_end", "arrival", "compute_start", "compute_end"} <= kinds
    sends = mon.of_kind("send_start")
    assert len(sends) == len(mon.of_kind("compute_end"))


def test_des_trace_times_match_records(small_platform):
    mon = Monitor()
    result = simulate(small_platform, W, UMR(), NoError(), engine="des", trace=mon)
    ends = sorted(r.time for r in mon.of_kind("compute_end"))
    assert ends[-1] == result.makespan


def test_zero_error_ties_are_systematic(paper_platform):
    # UMR's no-idle alignment makes round boundaries coincide exactly; this
    # is the case the DES engine's same-time flush exists for.  Out-of-order
    # RUMR consults idleness at those instants, so any divergence between
    # engines would show up here.
    sched = RUMR(known_error=0.3, out_of_order=True)
    assert_identical(paper_platform, sched, NoError(), None)
