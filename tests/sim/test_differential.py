"""Cross-engine differential harness: the fast engine vs the DES engine.

The repo's load-bearing invariant is that :func:`repro.sim.simulate_fast`
and :func:`repro.sim.simulate_des` are *trajectory-identical* — same
floats, same record stream, same losses — for every scheduler, error model
and fault scenario.  The sweep fast paths and the analytic checks all rest
on it.  This module enforces it two ways:

* **curated cases** (promoted from the original ``test_engine_equivalence``
  suite): every scheduler on reference platforms, plus hand-picked corners
  (tLat, divide-mode errors, heterogeneity, zero-error ties, deterministic
  and degenerate faults);
* **a seeded randomized harness**: ``N_RANDOM_CONFIGS`` configurations of
  (platform, scheduler, error, fault) drawn from a fixed root seed, each
  asserting bit-for-bit equality.  Equality is *exact* in every case —
  including under faults — because both engines consume the same
  pre-sampled :class:`~repro.errors.faults.FaultSchedule` through the same
  pure arithmetic.

The oracle is the **canonical event stream** (:mod:`repro.obs`): both
engines run under a :class:`~repro.obs.Tracer` and their canonically
ordered streams are compared event by event.  On mismatch the failure
message names the *first divergent event* — engine, event kind,
timestamp, worker, and chunk — instead of a bare float inequality, and
(when ``REPRO_DIFF_ARTIFACTS`` names a directory) both full streams are
dumped there as JSONL for offline diffing.  Record/makespan equality is
kept as a backstop for anything the stream does not carry (arrival
times, loss bookkeeping).
"""

import os
import pathlib

import numpy as np
import pytest

from repro.core import (
    RUMR,
    UMR,
    EqualSplit,
    Factoring,
    FixedSizeChunking,
    MultiInstallment,
    OneRound,
    WeightedFactoring,
)
from repro.errors import NoError, NormalErrorModel, UniformErrorModel
from repro.obs import Tracer, events_to_jsonl, first_divergence
from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform
from repro.sim import simulate, validate_schedule

W = 1000.0

ALL_SCHEDULERS = [
    UMR(),
    RUMR(known_error=0.3),
    RUMR(known_error=0.3, out_of_order=False),
    RUMR(known_error=1.5),
    RUMR(phase1_fraction=0.7),
    Factoring(),
    WeightedFactoring(),
    FixedSizeChunking(known_error=0.3),
    MultiInstallment(1),
    MultiInstallment(3),
    OneRound(),
    EqualSplit(),
]


def _dump_divergence_artifacts(fast_events, des_events, divergence) -> str:
    """Write both streams + the report to ``$REPRO_DIFF_ARTIFACTS``.

    Returns a note naming the files (empty when the env var is unset), so
    CI can upload the directory as a build artifact on failure.
    """
    directory = os.environ.get("REPRO_DIFF_ARTIFACTS")
    if not directory:
        return ""
    out = pathlib.Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    stem = f"divergence-{len(list(out.glob('divergence-*.txt')))}"
    (out / f"{stem}-fast.jsonl").write_text(events_to_jsonl(fast_events))
    (out / f"{stem}-des.jsonl").write_text(events_to_jsonl(des_events))
    (out / f"{stem}.txt").write_text(divergence.describe() + "\n")
    return f"\n(full streams dumped to {out}/{stem}-*.jsonl)"


def assert_traces_identical(fast_tracer, des_tracer):
    """The trace oracle: canonical streams must match event for event."""
    fast_events = fast_tracer.canonical()
    des_events = des_tracer.canonical()
    divergence = first_divergence(fast_events, des_events, labels=("fast", "des"))
    if divergence is not None:
        note = _dump_divergence_artifacts(fast_events, des_events, divergence)
        pytest.fail(divergence.describe() + note)


def assert_identical(
    platform, scheduler, error_model, seed, work=W, faults=None, topology=None
):
    """Run both engines and assert bit-for-bit identical trajectories.

    With a ``topology``, both engines route through the same interconnect
    shape; for ``sharedbw`` shapes the "fast" run is itself rerouted to
    the DES engine, so the comparison degenerates to the run-to-run
    self-consistency gate.
    """
    fast_tracer, des_tracer = Tracer(), Tracer()
    fast = simulate(
        platform, work, scheduler, error_model, seed=seed, engine="fast",
        faults=faults, tracer=fast_tracer, topology=topology,
    )
    des = simulate(
        platform, work, scheduler, error_model, seed=seed, engine="des",
        faults=faults, tracer=des_tracer, topology=topology,
    )
    assert_traces_identical(fast_tracer, des_tracer)
    # Backstop: fields the event stream does not carry (arrival, loss
    # bookkeeping) plus the headline numbers.
    assert fast.makespan == des.makespan
    assert fast.num_chunks == des.num_chunks
    assert fast.work_lost == des.work_lost
    for a, b in zip(fast.records, des.records):
        assert a.worker == b.worker
        assert a.size == b.size
        assert a.send_start == b.send_start
        assert a.send_end == b.send_end
        assert a.arrival == b.arrival
        assert a.comp_start == b.comp_start
        assert a.comp_end == b.comp_end
        assert a.lost == b.lost
        assert a.loss_time == b.loss_time
    validate_schedule(fast)
    validate_schedule(des)
    return fast


# ---------------------------------------------------------------------------
# Curated fault-free cases (promoted from test_engine_equivalence).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
def test_engines_identical_no_error(scheduler, paper_platform):
    assert_identical(paper_platform, scheduler, NoError(), None)


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
def test_engines_identical_normal_error(scheduler, paper_platform):
    assert_identical(paper_platform, scheduler, NormalErrorModel(0.3), 42)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_engines_identical_across_seeds(seed, small_platform):
    assert_identical(small_platform, RUMR(known_error=0.4), NormalErrorModel(0.4), seed)


def test_engines_identical_uniform_error(paper_platform):
    assert_identical(paper_platform, Factoring(), UniformErrorModel(0.3), 7)


def test_engines_identical_heterogeneous(hetero_platform):
    for scheduler in (UMR(), Factoring(), RUMR(known_error=0.2)):
        assert_identical(hetero_platform, scheduler, NormalErrorModel(0.2), 3)


def test_engines_identical_with_tlat():
    p = PlatformSpec([WorkerSpec(S=1.0, B=10.0, cLat=0.1, nLat=0.1, tLat=0.4)] * 4)
    assert_identical(p, UMR(), NormalErrorModel(0.2), 11)
    assert_identical(p, Factoring(), NormalErrorModel(0.2), 11)


def test_engines_identical_divide_mode(paper_platform):
    assert_identical(
        paper_platform, RUMR(known_error=0.3), NormalErrorModel(0.3, mode="divide"), 13
    )


def test_zero_error_ties_are_systematic(paper_platform):
    # UMR's no-idle alignment makes round boundaries coincide exactly; this
    # is the case the DES engine's same-time flush exists for.  Out-of-order
    # RUMR consults idleness at those instants, so any divergence between
    # engines would show up here.
    sched = RUMR(known_error=0.3, out_of_order=True)
    assert_identical(paper_platform, sched, NoError(), None)


# ---------------------------------------------------------------------------
# Curated fault cases.
# ---------------------------------------------------------------------------

FAULT_SPECS = (
    "crash:worker=1,at=0",
    "crash:worker=1,at=25",
    "crash:p=0.5,tmax=120",
    "pause:p=0.6,tmax=120,dur=30",
    "slow:p=0.6,tmax=120,factor=2.5",
    "spike:p=0.25,delay=4",
)

FAULT_SCHEDULERS = [
    UMR(),
    RUMR(known_error=0.3),
    Factoring(),
    WeightedFactoring(),
    MultiInstallment(2),
    OneRound(),
    EqualSplit(),
]


@pytest.mark.parametrize("fault", FAULT_SPECS)
@pytest.mark.parametrize("scheduler", FAULT_SCHEDULERS, ids=lambda s: s.name)
def test_engines_identical_under_faults(scheduler, fault, small_platform):
    assert_identical(small_platform, scheduler, NormalErrorModel(0.2), 17, faults=fault)


@pytest.mark.parametrize("fault", FAULT_SPECS)
def test_engines_identical_under_faults_no_error(fault, small_platform):
    # Faults consume randomness even when errors do not, so the run seed
    # must be pinned (seed=None draws fresh entropy per engine call).
    assert_identical(small_platform, RUMR(known_error=0.3), NoError(), 23, faults=fault)


def test_engines_identical_sole_worker_crash():
    # Degenerate corner: the only worker dies mid-run; the remaining work
    # is unrecoverable and both engines must agree on the partial schedule.
    p = homogeneous_platform(1, S=1.0, bandwidth_factor=1.5, cLat=0.1, nLat=0.1)
    result = assert_identical(
        p, Factoring(), NoError(), None, work=200.0, faults="crash:worker=0,at=50"
    )
    assert result.work_lost > 0.0
    assert result.delivered_work < 200.0


def test_engines_identical_faults_heterogeneous(hetero_platform):
    for scheduler in (Factoring(), WeightedFactoring(), RUMR(known_error=0.2)):
        assert_identical(
            hetero_platform,
            scheduler,
            NormalErrorModel(0.2),
            5,
            faults="crash:worker=2,at=40",
        )


# ---------------------------------------------------------------------------
# Batched fault configurations: the batch engines vs the DES engine.
#
# At error 0 the batch engines reproduce the scalar engine's fault
# semantics bit for bit, and the scalar engine is trajectory-identical to
# the DES engine — so the whole chain must agree exactly.  Selected in CI
# with ``pytest -k batched_fault``.
# ---------------------------------------------------------------------------

from repro.core import AdaptiveRUMR  # noqa: E402 — grouped with its tests
from repro.errors.faults import make_fault_model  # noqa: E402
from repro.sim.batch import simulate_static_batch  # noqa: E402
from repro.sim.dynbatch import simulate_dynamic_batch  # noqa: E402

BATCH_FAULT_SPECS = (
    "crash:worker=1,at=25",
    "crash:p=0.5,tmax=120",
    "pause:p=0.6,tmax=120,dur=30",
    "slow:p=0.6,tmax=120,factor=2.5",
    "spike:p=0.25,delay=4",
)

BATCH_SEEDS = tuple(range(40, 46))


def _des_makespans(platform, scheduler, fault, seeds, work=W):
    return np.array(
        [
            simulate(
                platform, work, scheduler, NoError(), seed=s, engine="des",
                faults=fault,
            ).makespan
            for s in seeds
        ]
    )


@pytest.mark.parametrize("fault", BATCH_FAULT_SPECS)
@pytest.mark.parametrize(
    "scheduler",
    [UMR(), MultiInstallment(2), OneRound(), EqualSplit()],
    ids=lambda s: s.name,
)
def test_batched_fault_static_grid_matches_des(scheduler, fault, small_platform):
    plan = scheduler.static_plan(small_platform, W)
    batch = simulate_static_batch(
        small_platform, plan, 0.0, seeds=BATCH_SEEDS,
        faults=make_fault_model(fault),
    )
    des = _des_makespans(small_platform, scheduler, fault, BATCH_SEEDS)
    assert np.array_equal(batch, des)


@pytest.mark.parametrize("fault", BATCH_FAULT_SPECS)
@pytest.mark.parametrize(
    "scheduler",
    [
        Factoring(),
        WeightedFactoring(),
        RUMR(known_error=0.3),
        FixedSizeChunking(known_error=0.3),
        AdaptiveRUMR(),
    ],
    ids=lambda s: s.name,
)
def test_batched_fault_lockstep_matches_des(scheduler, fault, small_platform):
    batch = simulate_dynamic_batch(
        small_platform, scheduler, W, 0.0, BATCH_SEEDS,
        faults=make_fault_model(fault),
    )
    des = _des_makespans(small_platform, scheduler, fault, BATCH_SEEDS)
    assert np.array_equal(batch, des)


# ---------------------------------------------------------------------------
# Randomized differential harness.
# ---------------------------------------------------------------------------

N_RANDOM_CONFIGS = 56

_SCHEDULER_POOL = (
    lambda err: UMR(),
    lambda err: RUMR(known_error=max(err, 0.1)),
    lambda err: RUMR(known_error=max(err, 0.1), out_of_order=False),
    lambda err: RUMR(phase1_fraction=0.7),
    lambda err: Factoring(),
    lambda err: WeightedFactoring(),
    lambda err: FixedSizeChunking(known_error=max(err, 0.1)),
    lambda err: MultiInstallment(2),
    lambda err: MultiInstallment(3),
    lambda err: OneRound(),
    lambda err: EqualSplit(),
)


def _random_fault(rng, n):
    kind = int(rng.integers(0, 6))
    if kind == 0:
        return "none"
    if kind == 1:
        return f"crash:worker={int(rng.integers(0, n))},at={float(rng.uniform(0, 120)):.6g}"
    if kind == 2:
        return f"crash:p={float(rng.uniform(0.2, 0.8)):.6g},tmax=120"
    if kind == 3:
        return f"pause:p=0.6,tmax=120,dur={float(rng.uniform(5, 60)):.6g}"
    if kind == 4:
        return f"slow:p=0.6,tmax=120,factor={float(rng.uniform(1.5, 4.0)):.6g}"
    return f"spike:p={float(rng.uniform(0.1, 0.4)):.6g},delay={float(rng.uniform(1, 8)):.6g}"


def _random_config(index):
    """One deterministic (platform, scheduler, error, fault, seed) draw."""
    rng = np.random.default_rng(np.random.SeedSequence(20030610, spawn_key=(index,)))
    n = int(rng.integers(2, 13))
    if rng.random() < 0.25:
        platform = PlatformSpec(
            [
                WorkerSpec(
                    S=float(rng.uniform(0.5, 2.0)),
                    B=float(rng.uniform(5.0, 40.0)),
                    cLat=float(rng.uniform(0.0, 0.6)),
                    nLat=float(rng.uniform(0.0, 0.6)),
                    tLat=float(rng.uniform(0.0, 0.3)),
                )
                for _ in range(n)
            ]
        )
    else:
        platform = homogeneous_platform(
            n,
            S=1.0,
            bandwidth_factor=float(rng.uniform(1.1, 2.5)),
            cLat=float(rng.uniform(0.0, 0.8)),
            nLat=float(rng.uniform(0.0, 0.8)),
            tLat=float(rng.uniform(0.0, 0.3)),
        )
    error = float(rng.choice([0.0, 0.1, 0.2, 0.3, 0.4]))
    scheduler = _SCHEDULER_POOL[int(rng.integers(0, len(_SCHEDULER_POOL)))](error)
    fault = _random_fault(rng, n)
    work = float(rng.choice([200.0, 500.0, 1000.0]))
    seed = int(rng.integers(0, 2**31))
    return platform, scheduler, error, fault, work, seed


def _config_id(index):
    _, scheduler, error, fault, work, _ = _random_config(index)
    return f"{index:02d}-{scheduler.name}-e{error:g}-{fault.split(':')[0]}"


@pytest.mark.parametrize("index", range(N_RANDOM_CONFIGS), ids=_config_id)
def test_differential_random_config(index):
    platform, scheduler, error, fault, work, seed = _random_config(index)
    model = NoError() if error == 0.0 else NormalErrorModel(error)
    assert_identical(platform, scheduler, model, seed, work=work, faults=fault)


# ---------------------------------------------------------------------------
# The oracle itself: a deliberate mismatch must be caught and reported as
# the first divergent event, naming engine, kind, timestamp, worker, chunk.
# ---------------------------------------------------------------------------


def test_deliberate_mismatch_reports_first_divergent_event(
    small_platform, tmp_path, monkeypatch
):
    # Perturb one engine's trajectory (different seed) and check the trace
    # oracle fails with a report naming the exact fork point.
    fast_tracer, des_tracer = Tracer(), Tracer()
    simulate(
        small_platform, W, RUMR(known_error=0.3), NormalErrorModel(0.3),
        seed=1, engine="fast", tracer=fast_tracer,
    )
    simulate(
        small_platform, W, RUMR(known_error=0.3), NormalErrorModel(0.3),
        seed=2, engine="des", tracer=des_tracer,
    )
    monkeypatch.setenv("REPRO_DIFF_ARTIFACTS", str(tmp_path))
    with pytest.raises(pytest.fail.Exception) as excinfo:
        assert_traces_identical(fast_tracer, des_tracer)
    message = str(excinfo.value)
    assert "diverge at canonical event #" in message
    assert "fast:" in message and "des:" in message
    assert "kind=" in message and "time=" in message
    assert "worker=" in message and "chunk=" in message
    # Both streams were dumped for offline diffing.
    assert (tmp_path / "divergence-0-fast.jsonl").exists()
    assert (tmp_path / "divergence-0-des.jsonl").exists()
    assert "divergence-0" in message


def test_deliberate_mismatch_names_the_differing_fields():
    fast_tracer, des_tracer = Tracer(), Tracer()
    fast_tracer.emit(0.0, "dispatch_start", 0, chunk=0, size=10.0)
    des_tracer.emit(0.5, "dispatch_start", 0, chunk=0, size=10.0)
    with pytest.raises(pytest.fail.Exception) as excinfo:
        assert_traces_identical(fast_tracer, des_tracer)
    message = str(excinfo.value)
    assert "differing fields: time" in message
    assert "time delta: 0.5" in message


def test_deliberate_length_mismatch_reports_short_stream():
    fast_tracer, des_tracer = Tracer(), Tracer()
    for tracer in (fast_tracer, des_tracer):
        tracer.emit(0.0, "dispatch_start", 0, chunk=0, size=10.0)
        tracer.emit(1.0, "dispatch_end", 0, chunk=0, size=10.0)
    fast_tracer.emit(2.0, "comp_start", 0, chunk=0, size=10.0)
    with pytest.raises(pytest.fail.Exception) as excinfo:
        assert_traces_identical(fast_tracer, des_tracer)
    message = str(excinfo.value)
    assert "diverge at canonical event #2" in message
    assert "des emitted fewer events" in message
    assert "<no event (stream ended)>" in message


# ---------------------------------------------------------------------------
# Cross-topology differential matrix: (topology × scheduler × error) cells.
#
# Star and chain/tree cells assert *exact* fast-vs-DES equality (the
# closed-form relay recurrences realize the same floats as the DES relay
# processes); sharedbw cells — DES-only by construction — assert run-to-run
# self-consistency through the same first_divergence oracle.  Selected in
# CI with ``pytest -m topology``.
# ---------------------------------------------------------------------------

from repro.obs import first_divergence as _first_divergence  # noqa: E402

TOPOLOGY_MATRIX_SPECS = (
    "star",
    "chain:relay=sf",
    "chain:relay=ct",
    "tree:fanout=2",
    "tree:fanout=3",
    "sharedbw:cap=9",
)

TOPOLOGY_MATRIX_SCHEDULERS = [
    UMR(),
    RUMR(known_error=0.3),
    Factoring(),
    WeightedFactoring(),
]


@pytest.mark.topology
@pytest.mark.parametrize("error", (0.0, 0.3))
@pytest.mark.parametrize(
    "scheduler", TOPOLOGY_MATRIX_SCHEDULERS, ids=lambda s: s.name
)
@pytest.mark.parametrize("topology", TOPOLOGY_MATRIX_SPECS)
def test_topology_matrix_engines_identical(topology, scheduler, error, small_platform):
    model = NoError() if error == 0.0 else NormalErrorModel(error)
    assert_identical(small_platform, scheduler, model, 31, topology=topology)


@pytest.mark.topology
@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
def test_star_topology_bitwise_identical_to_legacy(scheduler, small_platform):
    # The compatibility contract: topology="star" must take the exact
    # legacy code path in both engines — same floats, same records.
    for engine in ("fast", "des"):
        legacy = simulate(
            small_platform, W, scheduler, NormalErrorModel(0.2), seed=9, engine=engine
        )
        star = simulate(
            small_platform, W, scheduler, NormalErrorModel(0.2), seed=9,
            engine=engine, topology="star",
        )
        assert legacy.makespan == star.makespan
        assert legacy.records == star.records


@pytest.mark.topology
@pytest.mark.parametrize("fault", ("crash:worker=1,at=25", "crash:p=0.5,tmax=120"))
def test_star_topology_bitwise_identical_to_legacy_under_faults(
    fault, small_platform
):
    for engine in ("fast", "des"):
        legacy = simulate(
            small_platform, W, RUMR(known_error=0.3), NormalErrorModel(0.2),
            seed=9, engine=engine, faults=fault,
        )
        star = simulate(
            small_platform, W, RUMR(known_error=0.3), NormalErrorModel(0.2),
            seed=9, engine=engine, faults=fault, topology="star",
        )
        assert legacy.makespan == star.makespan
        assert legacy.records == star.records
        assert legacy.work_lost == star.work_lost


@pytest.mark.topology
@pytest.mark.parametrize(
    "topology", ("chain:relay=sf", "chain:relay=ct", "tree:fanout=2", "sharedbw:cap=9")
)
def test_topology_des_self_consistent(topology, small_platform):
    # Two identically seeded DES runs must realize identical canonical
    # streams — the first_divergence oracle names the fork point if not.
    streams = []
    for _ in range(2):
        tracer = Tracer()
        simulate(
            small_platform, W, Factoring(), NormalErrorModel(0.25), seed=19,
            engine="des", topology=topology, tracer=tracer,
        )
        streams.append(tracer.canonical())
    divergence = _first_divergence(streams[0], streams[1], labels=("run1", "run2"))
    if divergence is not None:
        note = _dump_divergence_artifacts(streams[0], streams[1], divergence)
        pytest.fail(divergence.describe() + note)


N_TOPOLOGY_RANDOM_CONFIGS = 16

_TOPOLOGY_POOL = (
    "star",
    "chain:relay=sf",
    "chain:relay=ct",
    "tree:fanout=2",
    "tree:fanout=3",
    "tree:fanout=4",
)


def _random_topology_config(index):
    """One deterministic (platform, topology, scheduler, error, fault) draw."""
    rng = np.random.default_rng(np.random.SeedSequence(20030611, spawn_key=(index,)))
    n = int(rng.integers(2, 10))
    platform = homogeneous_platform(
        n,
        S=1.0,
        bandwidth_factor=float(rng.uniform(1.1, 2.5)),
        cLat=float(rng.uniform(0.0, 0.6)),
        nLat=float(rng.uniform(0.0, 0.6)),
        tLat=float(rng.uniform(0.0, 0.3)),
    )
    topology = _TOPOLOGY_POOL[int(rng.integers(0, len(_TOPOLOGY_POOL)))]
    error = float(rng.choice([0.0, 0.2, 0.4]))
    scheduler = _SCHEDULER_POOL[int(rng.integers(0, len(_SCHEDULER_POOL)))](error)
    fault = _random_fault(rng, n)
    seed = int(rng.integers(0, 2**31))
    return platform, topology, scheduler, error, fault, seed


def _topology_config_id(index):
    _, topology, scheduler, error, fault, _ = _random_topology_config(index)
    kind = topology.split(":")[0]
    return f"{index:02d}-{kind}-{scheduler.name}-e{error:g}-{fault.split(':')[0]}"


@pytest.mark.topology
@pytest.mark.parametrize(
    "index", range(N_TOPOLOGY_RANDOM_CONFIGS), ids=_topology_config_id
)
def test_topology_differential_random_config(index):
    platform, topology, scheduler, error, fault, seed = _random_topology_config(index)
    model = NoError() if error == 0.0 else NormalErrorModel(error)
    assert_identical(
        platform, scheduler, model, seed, work=500.0, faults=fault, topology=topology
    )


def test_random_topology_configs_cover_all_shapes():
    # Guard the harness itself: the draw must exercise every relay shape
    # and both relay modes across the configured count.
    kinds = set()
    for i in range(N_TOPOLOGY_RANDOM_CONFIGS):
        _, topology, _, _, _, _ = _random_topology_config(i)
        kinds.add(topology.split(":")[0])
    assert kinds == {"star", "chain", "tree"}


def test_random_configs_cover_all_fault_kinds():
    # Guard the harness itself: the draw must exercise every fault kind and
    # both the error-free and noisy regimes across the configured count.
    kinds = set()
    errors = set()
    for i in range(N_RANDOM_CONFIGS):
        _, _, error, fault, _, _ = _random_config(i)
        kinds.add(fault.split(":")[0])
        errors.add(error == 0.0)
    assert kinds == {"none", "crash", "pause", "slow", "spike"}
    assert errors == {True, False}
