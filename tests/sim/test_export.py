"""Tests for the trace exporters."""

import csv
import io
import json

import pytest

from repro.core import RUMR
from repro.errors import NormalErrorModel
from repro.platform import homogeneous_platform
from repro.sim import simulate
from repro.sim.export import chrome_trace, records_csv, result_json


@pytest.fixture(scope="module")
def result():
    p = homogeneous_platform(4, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1)
    return simulate(p, 300.0, RUMR(known_error=0.3), NormalErrorModel(0.3), seed=2)


class TestCsv:
    def test_parses_and_counts(self, result):
        rows = list(csv.DictReader(io.StringIO(records_csv(result))))
        assert len(rows) == result.num_chunks
        assert set(rows[0]) == {
            "index", "worker", "size", "send_start", "send_end",
            "arrival", "comp_start", "comp_end", "phase",
        }

    def test_values_roundtrip(self, result):
        rows = list(csv.DictReader(io.StringIO(records_csv(result))))
        first = rows[0]
        assert int(first["index"]) == 0
        assert float(first["size"]) == pytest.approx(result.records[0].size, rel=1e-6)


class TestJson:
    def test_valid_and_self_describing(self, result):
        doc = json.loads(result_json(result))
        assert doc["scheduler"] == "RUMR"
        assert doc["num_chunks"] == result.num_chunks
        assert len(doc["records"]) == result.num_chunks
        assert len(doc["platform"]) == 4
        assert doc["makespan"] == pytest.approx(result.makespan)

    def test_indent_option(self, result):
        assert "\n" in result_json(result, indent=2)


class TestChromeTrace:
    def test_valid_trace_events(self, result):
        doc = json.loads(chrome_trace(result))
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        # One send + one compute span per chunk.
        assert len(spans) == 2 * result.num_chunks
        # One name per worker plus the link row.
        assert len(metas) == result.platform.N + 1

    def test_durations_nonnegative_microseconds(self, result):
        doc = json.loads(chrome_trace(result))
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                assert e["dur"] >= 0
                assert e["ts"] >= 0

    def test_link_spans_on_tid_zero(self, result):
        doc = json.loads(chrome_trace(result))
        sends = [e for e in doc["traceEvents"] if e["ph"] == "X" and e["name"].startswith("send")]
        assert all(e["tid"] == 0 for e in sends)
