"""Tests for the analytic (zero-error) plan evaluator."""

import pytest

from repro.core import UMR, MultiInstallment, OneRound
from repro.core.chunks import ChunkPlan, PlannedChunk
from repro.core.umr import solve_umr
from repro.errors import NoError
from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform
from repro.sim import simulate
from repro.sim.analytic import analytic_makespan, analytic_timeline

W = 1000.0


def test_empty_plan_makespan_zero():
    p = homogeneous_platform(2, S=1.0, B=4.0)
    assert analytic_makespan(p, ChunkPlan([])) == 0.0


def test_timeline_matches_hand_computation():
    p = PlatformSpec([WorkerSpec(S=2.0, B=4.0, cLat=0.5, nLat=0.25, tLat=0.1)])
    plan = ChunkPlan([PlannedChunk(worker=0, size=8.0)])
    ((w, ss, se, ar, cs, ce),) = analytic_timeline(p, plan)
    assert (w, ss) == (0, 0.0)
    assert se == pytest.approx(2.25)
    assert ar == pytest.approx(2.35)
    assert cs == pytest.approx(2.35)
    assert ce == pytest.approx(2.35 + 0.5 + 4.0)


@pytest.mark.parametrize("scheduler", [UMR(), MultiInstallment(3), OneRound()])
def test_analytic_equals_simulated_for_static_plans(scheduler, paper_platform):
    simulated = simulate(paper_platform, W, scheduler, NoError()).makespan
    if isinstance(scheduler, UMR):
        plan = solve_umr(paper_platform, W).to_chunk_plan()
    elif isinstance(scheduler, MultiInstallment):
        plan = scheduler.schedule(paper_platform, W).to_chunk_plan()
    else:
        sizes = scheduler.chunk_sizes(paper_platform, W)
        plan = ChunkPlan(
            PlannedChunk(worker=i, size=s, round_index=0) for i, s in enumerate(sizes)
        )
    assert analytic_makespan(paper_platform, plan) == pytest.approx(simulated, rel=1e-12)


def test_analytic_heterogeneous(hetero_platform):
    plan = solve_umr(hetero_platform, W).to_chunk_plan()
    simulated = simulate(hetero_platform, W, UMR(), NoError()).makespan
    assert analytic_makespan(hetero_platform, plan) == pytest.approx(simulated, rel=1e-12)
