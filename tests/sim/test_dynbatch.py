"""Tests for the lockstep dynamic batch simulator."""

import numpy as np
import pytest

from repro.core.registry import is_batch_dynamic_algorithm, make_scheduler
from repro.errors import NormalErrorModel
from repro.platform import PlatformSpec, WorkerSpec, homogeneous_platform
from repro.sim.batch import simulate_static_batch
from repro.sim.dynbatch import (
    DynamicCell,
    simulate_dynamic_batch,
    simulate_dynamic_cells,
)
from repro.sim.fastsim import simulate_fast

W = 1000.0
SEEDS = tuple(range(20, 26))

BATCHABLE = (
    "Factoring", "WeightedFactoring", "RUMR", "RUMR-plain", "RUMR_70",
    "FSC", "AdaptiveRUMR",
)


def scalar_makespans(platform, scheduler, error, seeds):
    model = NormalErrorModel(magnitude=error)
    return np.array(
        [
            simulate_fast(
                platform, W, scheduler, model, seed=s, collect_records=False
            ).makespan
            for s in seeds
        ]
    )


@pytest.fixture(scope="module")
def hom_platform():
    return homogeneous_platform(10, S=1.0, bandwidth_factor=1.4, cLat=0.0, nLat=0.1)


@pytest.fixture(scope="module")
def het_platform():
    # Mixed speeds, bandwidths and latencies; every link cost is nonzero
    # so the scalar engine consumes exactly one comm draw per dispatch
    # (the documented zero-cost-transfer exception does not trigger).
    return PlatformSpec(
        workers=(
            WorkerSpec(S=1.0, B=2.0, cLat=0.1, nLat=0.05, tLat=0.02),
            WorkerSpec(S=2.5, B=1.2, cLat=0.0, nLat=0.1, tLat=0.0),
            WorkerSpec(S=0.7, B=np.inf, cLat=0.3, nLat=0.01, tLat=0.1),
        )
    )


class TestExactAgreement:
    @pytest.mark.parametrize("name", BATCHABLE)
    def test_zero_error_bitwise_equal(self, hom_platform, name):
        scheduler = make_scheduler(name, 0.0)
        scalar = scalar_makespans(hom_platform, scheduler, 0.0, SEEDS)
        batch = simulate_dynamic_batch(hom_platform, scheduler, W, 0.0, SEEDS)
        assert np.array_equal(scalar, batch)

    @pytest.mark.parametrize("name", BATCHABLE)
    def test_nonzero_error_bitwise_equal_when_no_resample(self, hom_platform, name):
        # At small error the truncation floor is essentially never hit, so
        # the factor streams are consumed identically and the whole
        # trajectory matches bit for bit.
        scheduler = make_scheduler(name, 0.05)
        scalar = scalar_makespans(hom_platform, scheduler, 0.05, SEEDS)
        batch = simulate_dynamic_batch(hom_platform, scheduler, W, 0.05, SEEDS)
        assert np.array_equal(scalar, batch)

    @pytest.mark.parametrize("name", BATCHABLE)
    def test_heterogeneous_platform_bitwise_equal(self, het_platform, name):
        scheduler = make_scheduler(name, 0.05)
        scalar = scalar_makespans(het_platform, scheduler, 0.05, SEEDS)
        batch = simulate_dynamic_batch(het_platform, scheduler, W, 0.05, SEEDS)
        assert np.array_equal(scalar, batch)

    def test_registry_flags(self):
        for name in BATCHABLE:
            assert is_batch_dynamic_algorithm(name)
        for name in ("UMR", "MI-2", "OneRound", "EqualSplit"):
            assert not is_batch_dynamic_algorithm(name)

    def test_all_schedulers_support_batched_faults(self):
        from repro.core.registry import available_schedulers

        for name in available_schedulers():
            assert make_scheduler(name, 0.0).batch_supports_faults, name


class TestVectorizedFaultPlane:
    """Fault rows run on the lockstep path; deferral is the exception."""

    def scalar_fault_makespans(self, platform, make, fault, seeds):
        from repro.errors.faults import make_fault_model

        model = NormalErrorModel(magnitude=0.0)
        fm = make_fault_model(fault)
        return np.array(
            [
                simulate_fast(
                    platform, W, make(), model, seed=s,
                    collect_records=False, faults=fm,
                ).makespan
                for s in seeds
            ]
        )

    @pytest.mark.parametrize(
        "name", ["RUMR", "RUMR-plain", "AdaptiveRUMR", "WeightedFactoring"]
    )
    def test_previously_deferred_kernels_run_crash_rows_in_lockstep(
        self, hom_platform, name
    ):
        # These kernel families once routed every crash row to the scalar
        # engine; they now replay crash recovery in lockstep, bitwise.
        from repro.errors.faults import make_fault_model

        fault = "crash:p=0.6,tmax=80"
        perf: dict = {}
        cell = DynamicCell(
            platform=hom_platform,
            scheduler=make_scheduler(name, 0.0),
            total_work=W,
            error=0.0,
            seeds=SEEDS,
            faults=make_fault_model(fault),
        )
        batch = simulate_dynamic_cells([cell], perf=perf)[0]
        scalar = self.scalar_fault_makespans(
            hom_platform, lambda: make_scheduler(name, 0.0), fault, SEEDS
        )
        assert np.array_equal(batch, scalar)
        assert perf.get("rows_deferred_scalar", 0) == 0

    def test_rumr_crash_at_zero_defers_to_scalar(self, hom_platform):
        # A crash observable at the very first decide makes scalar RUMR
        # replan from scratch — inexpressible in the kernel, so the row
        # takes the documented exception path and still matches exactly.
        from repro.errors.faults import make_fault_model

        fault = "crash:worker=0,at=0"
        perf: dict = {}
        cell = DynamicCell(
            platform=hom_platform,
            scheduler=make_scheduler("RUMR", 0.0),
            total_work=W,
            error=0.0,
            seeds=SEEDS,
            faults=make_fault_model(fault),
        )
        batch = simulate_dynamic_cells([cell], perf=perf)[0]
        scalar = self.scalar_fault_makespans(
            hom_platform, lambda: make_scheduler("RUMR", 0.0), fault, SEEDS
        )
        assert np.array_equal(batch, scalar)
        assert perf["rows_deferred_scalar"] == len(SEEDS)


class TestStatisticalAgreement:
    def test_means_match_scalar_engine_at_large_error(self, hom_platform):
        # Resampling interleaves differently at error = 0.3, so compare
        # distributions over many paired seeds, not bits.
        seeds = list(range(200))
        scheduler = make_scheduler("Factoring", 0.3)
        scalar = scalar_makespans(hom_platform, scheduler, 0.3, seeds)
        batch = simulate_dynamic_batch(hom_platform, scheduler, W, 0.3, seeds)
        assert batch.mean() == pytest.approx(scalar.mean(), rel=2e-3)
        # Most paired seeds never resample and stay bitwise identical.
        assert np.mean(scalar == batch) > 0.5


class TestMerging:
    def test_merged_cells_equal_solo_cells(self, hom_platform, het_platform):
        cells, solo = [], []
        for platform in (hom_platform, het_platform):
            for error in (0.0, 0.2):
                for name in ("Factoring", "WeightedFactoring", "RUMR"):
                    scheduler = make_scheduler(name, error)
                    cells.append(
                        DynamicCell(
                            platform=platform,
                            scheduler=scheduler,
                            total_work=W,
                            error=error,
                            seeds=SEEDS,
                        )
                    )
                    solo.append(
                        simulate_dynamic_batch(platform, scheduler, W, error, SEEDS)
                    )
        merged = simulate_dynamic_cells(cells)
        assert all(np.array_equal(m, s) for m, s in zip(merged, solo))

    def test_row_chunking_does_not_change_results(self, hom_platform):
        cells = [
            DynamicCell(
                platform=hom_platform,
                scheduler=make_scheduler(name, error),
                total_work=W,
                error=error,
                seeds=SEEDS,
            )
            for name in ("Factoring", "RUMR")
            for error in (0.0, 0.1)
        ]
        unchunked = simulate_dynamic_cells(cells)
        chunked = simulate_dynamic_cells(cells, max_rows=4)
        assert all(np.array_equal(u, c) for u, c in zip(unchunked, chunked))


class TestValidation:
    def test_non_batchable_scheduler_rejected(self, hom_platform):
        with pytest.raises(TypeError, match="not batch-dynamic"):
            DynamicCell(
                platform=hom_platform,
                scheduler=make_scheduler("UMR", 0.1),
                total_work=W,
                error=0.1,
                seeds=SEEDS,
            )

    def test_negative_error_rejected(self, hom_platform):
        with pytest.raises(ValueError, match="error magnitude"):
            DynamicCell(
                platform=hom_platform,
                scheduler=make_scheduler("Factoring", 0.0),
                total_work=W,
                error=-0.1,
                seeds=SEEDS,
            )

    def test_empty_seeds_rejected(self, hom_platform):
        with pytest.raises(ValueError, match="at least one seed"):
            DynamicCell(
                platform=hom_platform,
                scheduler=make_scheduler("Factoring", 0.0),
                total_work=W,
                error=0.0,
                seeds=(),
            )

    def test_bad_mode_rejected(self, hom_platform):
        cell = DynamicCell(
            platform=hom_platform,
            scheduler=make_scheduler("Factoring", 0.0),
            total_work=W,
            error=0.0,
            seeds=SEEDS,
        )
        with pytest.raises(ValueError, match="perturbation mode"):
            simulate_dynamic_cells([cell], mode="add")

    def test_bad_max_rows_rejected(self, hom_platform):
        cell = DynamicCell(
            platform=hom_platform,
            scheduler=make_scheduler("Factoring", 0.0),
            total_work=W,
            error=0.0,
            seeds=SEEDS,
        )
        with pytest.raises(ValueError, match="max_rows"):
            simulate_dynamic_cells([cell], max_rows=0)

    def test_static_batch_factor_row_mismatch_rejected(self, hom_platform):
        # Satellite of the same PR: shared factor matrices must carry one
        # row per repetition seed.
        from repro.core.umr import solve_umr
        from repro.sim.batch import draw_factor_matrices

        plan = solve_umr(hom_platform, W).to_chunk_plan()
        factors = draw_factor_matrices([1, 2, 3], len(plan), 0.2)
        with pytest.raises(ValueError, match="rows but 2 seeds"):
            simulate_static_batch(
                hom_platform, plan, 0.2, seeds=[1, 2], factors=factors
            )
