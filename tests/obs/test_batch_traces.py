"""Batch engines emit the same event streams as the scalar engine.

At ``error = 0`` the vectorized static engine and the lockstep dynamic
engine are bitwise-identical to the scalar fast engine, so their traced
event streams must match too — modulo phase labels and the
``round_boundary`` markers derived from them, where the engines
legitimately differ (the static batch engine labels rounds from the
compiled plan, the lockstep engine does not track phases at all).
"""

import dataclasses

import pytest

from repro.core import RUMR, UMR, Factoring, MultiInstallment, WeightedFactoring
from repro.errors import NoError
from repro.obs import Tracer, first_divergence
from repro.platform import homogeneous_platform
from repro.sim import simulate_fast
from repro.sim.batch import simulate_static_batch
from repro.sim.dynbatch import simulate_dynamic_batch

W = 500.0


@pytest.fixture
def platform():
    return homogeneous_platform(5, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1)


def strip_phases(events):
    """Drop phase labels and round markers — the engines' one free choice."""
    return tuple(
        dataclasses.replace(e, phase="")
        for e in events
        if e.kind != "round_boundary"
    )


def assert_streams_match(batch_tracer, scalar_tracer):
    batch_events = strip_phases(batch_tracer.canonical())
    scalar_events = strip_phases(scalar_tracer.canonical())
    divergence = first_divergence(batch_events, scalar_events,
                                  labels=("batch", "scalar"))
    assert divergence is None, divergence.describe()


class TestStaticBatchTraces:
    @pytest.mark.parametrize("scheduler", [UMR(), MultiInstallment(3)],
                             ids=["UMR", "MI-3"])
    def test_matches_scalar_at_zero_error(self, platform, scheduler):
        plan = scheduler.static_plan(platform, W)
        scalar_tracer = Tracer()
        scalar = simulate_fast(platform, W, scheduler, NoError(), seed=0,
                               tracer=scalar_tracer)
        batch_tracer = Tracer()
        spans = simulate_static_batch(
            platform, plan, 0.0, [0], tracers=[batch_tracer]
        )
        assert spans[0] == scalar.makespan
        assert_streams_match(batch_tracer, scalar_tracer)

    def test_per_seed_tracers_are_independent(self, platform):
        plan = UMR().static_plan(platform, W)
        tracers = [Tracer(), None, Tracer()]
        simulate_static_batch(platform, plan, 0.0, [0, 1, 2], tracers=tracers)
        # error=0 rows are identical, so both traced rows carry the same
        # stream; the None slot must simply be skipped.
        assert len(tracers[0]) == len(tracers[2]) > 0
        assert tracers[0].canonical() == tracers[2].canonical()

    def test_round_boundaries_come_from_plan(self, platform):
        plan = UMR().static_plan(platform, W)
        tracer = Tracer()
        simulate_static_batch(platform, plan, 0.0, [0], tracers=[tracer])
        rounds = {c.round_index for c in plan}
        assert len(tracer.of_kind("round_boundary")) == len(rounds)


class TestDynamicBatchTraces:
    @pytest.mark.parametrize(
        "scheduler",
        [Factoring(), WeightedFactoring(), RUMR(known_error=0.0)],
        ids=["Factoring", "WeightedFactoring", "RUMR"],
    )
    def test_matches_scalar_at_zero_error(self, platform, scheduler):
        scalar_tracer = Tracer()
        scalar = simulate_fast(platform, W, scheduler, NoError(), seed=7,
                               tracer=scalar_tracer)
        batch_tracer = Tracer()
        spans = simulate_dynamic_batch(
            platform, scheduler, W, 0.0, [7], tracers=[batch_tracer]
        )
        assert spans[0] == scalar.makespan
        assert_streams_match(batch_tracer, scalar_tracer)
