"""Unit tests for the Tracer hook and the pluggable sinks."""

import json

import pytest

from repro.core import RUMR
from repro.errors import NormalErrorModel
from repro.obs import (
    ChromeTraceSink,
    JsonlSink,
    RingSink,
    SimEvent,
    Tracer,
    write_chrome_trace,
)
from repro.platform import homogeneous_platform
from repro.sim import simulate


class TestTracer:
    def test_emit_retains_and_counts(self):
        tracer = Tracer()
        tracer.emit(1.0, "dispatch_start", 0, chunk=0, size=5.0)
        tracer.emit(2.0, "dispatch_end", 0, chunk=0, size=5.0)
        assert len(tracer) == 2
        assert tracer.events()[0].kind == "dispatch_start"
        assert tracer.of_kind("dispatch_end") == (tracer.events()[1],)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            Tracer().emit(0.0, "teleport", 0)

    def test_keep_false_is_pure_fanout(self):
        ring = RingSink(capacity=8)
        tracer = Tracer(sinks=[ring], keep=False)
        tracer.emit(1.0, "fault", 2, detail="crash")
        assert len(tracer) == 0
        assert len(ring) == 1
        assert ring.events[0].detail == "crash"

    def test_context_manager_closes_sinks(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with Tracer(sinks=[JsonlSink(path)]) as tracer:
            tracer.emit(0.0, "round_boundary", -1, chunk=0, phase="round0")
        with pytest.raises(ValueError, match="closed"):
            tracer._sinks[0].emit(SimEvent(1.0, "fault", 0))
        assert json.loads(path.read_text())["phase"] == "round0"


class TestRingSink:
    def test_bounded(self):
        ring = RingSink(capacity=3)
        for i in range(10):
            ring.emit(SimEvent(float(i), "comp_end", 0, chunk=i))
        assert len(ring) == 3
        assert [e.chunk for e in ring.events] == [7, 8, 9]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingSink(capacity=0)


class TestChromeTrace:
    @pytest.fixture
    def traced_run(self, tmp_path):
        platform = homogeneous_platform(
            4, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1
        )
        tracer = Tracer()
        simulate(
            platform, 300.0, RUMR(known_error=0.3), NormalErrorModel(0.3),
            seed=9, faults="crash:worker=1,at=40", tracer=tracer,
        )
        path = write_chrome_trace(tracer.canonical(), tmp_path / "run.trace.json")
        return tracer, json.loads(path.read_text())

    def test_payload_shape(self, traced_run):
        _, payload = traced_run
        assert "traceEvents" in payload
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert phases == {"X", "i"}

    def test_pairs_become_durations(self, traced_run):
        tracer, payload = traced_run
        durations = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        link = [e for e in durations if e["tid"] == 0]
        compute = [e for e in durations if e["tid"] > 0]
        assert len(link) == len(tracer.of_kind("dispatch_start"))
        assert len(compute) == len(tracer.of_kind("comp_start"))
        assert all(e["dur"] >= 0 for e in durations)

    def test_faults_become_instants(self, traced_run):
        tracer, payload = traced_run
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        n_scalar = sum(
            len(tracer.of_kind(k))
            for k in ("fault", "recovery_decision", "round_boundary")
        )
        assert len(instants) == n_scalar
        assert any(e["name"] == "fault:crash" for e in instants)

    def test_sink_writes_on_close(self, tmp_path):
        path = tmp_path / "sink.trace.json"
        sink = ChromeTraceSink(path)
        tracer = Tracer(sinks=[sink])
        tracer.emit(0.0, "dispatch_start", 0, chunk=0, size=1.0)
        tracer.emit(1.0, "dispatch_end", 0, chunk=0, size=1.0)
        assert not path.exists()
        tracer.close()
        events = json.loads(path.read_text())["traceEvents"]
        assert len(events) == 1 and events[0]["ph"] == "X"
        with pytest.raises(ValueError, match="closed"):
            sink.emit(SimEvent(2.0, "fault", 0))
