"""Unit tests for the first-divergent-event oracle."""

from repro.obs import SimEvent, first_divergence


def stream(*events):
    return tuple(events)


A = SimEvent(1.0, "dispatch_start", 0, chunk=0, size=10.0, phase="round0")
B = SimEvent(2.0, "dispatch_end", 0, chunk=0, size=10.0, phase="round0")
C = SimEvent(3.0, "comp_start", 0, chunk=0, size=10.0, phase="round0")


class TestFirstDivergence:
    def test_equal_streams_return_none(self):
        assert first_divergence(stream(A, B, C), stream(A, B, C)) is None
        assert first_divergence((), ()) is None

    def test_reports_first_differing_index(self):
        shifted = SimEvent(2.5, "dispatch_end", 0, chunk=0, size=10.0, phase="round0")
        d = first_divergence(stream(A, B, C), stream(A, shifted, C))
        assert d.index == 1
        assert d.left == B and d.right == shifted

    def test_length_mismatch_reports_none_side(self):
        d = first_divergence(stream(A, B, C), stream(A, B), labels=("fast", "des"))
        assert d.index == 2
        assert d.left == C and d.right is None
        assert "des emitted fewer events" in d.describe()
        assert "<no event (stream ended)>" in d.describe()

    def test_labels_flow_into_report(self):
        other = SimEvent(1.0, "dispatch_start", 1, chunk=0, size=10.0, phase="round0")
        d = first_divergence(stream(A), stream(other), labels=("fast", "des"))
        report = d.describe()
        assert "fast:" in report and "des:" in report
        assert "diverge at canonical event #0" in report


class TestDescribe:
    def test_names_every_identifying_field(self):
        other = SimEvent(1.25, "dispatch_start", 0, chunk=0, size=10.0, phase="round0")
        report = first_divergence(stream(A), stream(other)).describe()
        for fragment in ("kind=dispatch_start", "time=1.0", "worker=0", "chunk=0"):
            assert fragment in report

    def test_lists_differing_fields_and_time_delta(self):
        other = SimEvent(1.5, "dispatch_start", 2, chunk=0, size=10.0, phase="round0")
        report = first_divergence(stream(A), stream(other)).describe()
        assert "differing fields: time, worker" in report
        assert "time delta: 0.5" in report

    def test_detail_and_phase_surface_when_set(self):
        left = SimEvent(4.0, "fault", 1, detail="crash")
        right = SimEvent(4.0, "fault", 1, detail="loss")
        report = first_divergence(stream(left), stream(right)).describe()
        assert "detail='crash'" in report and "detail='loss'" in report
        assert "differing fields: detail" in report
