"""Unit tests for the event schema, canonical order, and derivations."""

import json

import pytest

from repro.core import RUMR, UMR, Factoring
from repro.errors import NoError, NormalErrorModel
from repro.obs import (
    EVENT_KINDS,
    SimEvent,
    Tracer,
    canonical_order,
    events_from_result,
    events_to_jsonl,
)
from repro.platform import homogeneous_platform
from repro.sim import simulate


@pytest.fixture
def platform():
    return homogeneous_platform(4, S=1.0, bandwidth_factor=1.5, cLat=0.2, nLat=0.1)


class TestCanonicalOrder:
    def test_sorts_by_time_first(self):
        late = SimEvent(5.0, "dispatch_start", 0)
        early = SimEvent(1.0, "comp_end", 3)
        assert canonical_order([late, early]) == (early, late)

    def test_tie_break_completions_before_dispatches(self):
        # At one instant the master observes completions/faults, decides,
        # then dispatches — the canonical order mirrors that.
        t = 10.0
        dispatch = SimEvent(t, "dispatch_start", 0, chunk=7)
        comp_end = SimEvent(t, "comp_end", 2, chunk=3)
        fault = SimEvent(t, "fault", 1, detail="crash")
        decision = SimEvent(t, "recovery_decision", 1, detail="crash-observed")
        boundary = SimEvent(t, "round_boundary", -1, chunk=7)
        comp_start = SimEvent(t, "comp_start", 0, chunk=7)
        shuffled = [dispatch, comp_start, boundary, fault, comp_end, decision]
        assert canonical_order(shuffled) == (
            comp_end, fault, decision, boundary, dispatch, comp_start,
        )

    def test_idempotent(self):
        events = [
            SimEvent(2.0, "comp_start", 1, chunk=1),
            SimEvent(1.0, "dispatch_end", 0, chunk=0),
            SimEvent(1.0, "dispatch_start", 1, chunk=1),
        ]
        once = canonical_order(events)
        assert canonical_order(once) == once

    def test_stable_for_identical_trajectories(self, platform):
        # Emission orders differ between engines; canonical orders match.
        fast_tracer, des_tracer = Tracer(), Tracer()
        simulate(platform, 300.0, RUMR(known_error=0.3), NormalErrorModel(0.3),
                 seed=5, engine="fast", tracer=fast_tracer)
        simulate(platform, 300.0, RUMR(known_error=0.3), NormalErrorModel(0.3),
                 seed=5, engine="des", tracer=des_tracer)
        assert fast_tracer.events() != des_tracer.events()
        assert fast_tracer.canonical() == des_tracer.canonical()


class TestEventsFromResult:
    def test_substream_of_live_trace(self, platform):
        tracer = Tracer()
        result = simulate(
            platform, 300.0, Factoring(), NoError(), seed=3,
            faults="crash:worker=1,at=30", tracer=tracer,
        )
        derived = events_from_result(result)
        live = set(tracer.canonical())
        assert set(derived) <= live
        # What the records cannot carry is exactly what is missing.
        missing_kinds = {e.kind for e in live - set(derived)}
        assert missing_kinds <= {"fault", "recovery_decision"}

    def test_lost_chunk_yields_loss_not_compute(self, platform):
        result = simulate(
            platform, 300.0, UMR(), NoError(), seed=0,
            faults="crash:worker=2,at=10",
        )
        assert any(r.lost for r in result.records)
        derived = events_from_result(result)
        lost_chunks = {r.index for r in result.records if r.lost}
        for e in derived:
            if e.chunk in lost_chunks:
                assert e.kind in ("dispatch_start", "dispatch_end", "fault",
                                  "round_boundary")
        losses = [e for e in derived if e.kind == "fault"]
        assert {e.chunk for e in losses} == lost_chunks
        assert all(e.detail == "loss" for e in losses)

    def test_round_boundaries_on_phase_changes(self, platform):
        result = simulate(platform, 300.0, UMR(), NoError())
        derived = events_from_result(result)
        boundaries = [e for e in derived if e.kind == "round_boundary"]
        phases = []
        for r in result.records:
            if not phases or phases[-1] != r.phase:
                phases.append(r.phase)
        assert len(boundaries) == len(phases)
        assert all(e.worker == -1 for e in boundaries)


class TestJsonl:
    def test_round_trips_and_is_deterministic(self):
        events = (
            SimEvent(1.5, "dispatch_start", 0, chunk=0, size=12.5, phase="round0"),
            SimEvent(2.0, "fault", 1, detail="crash"),
        )
        text = events_to_jsonl(events)
        assert text == events_to_jsonl(events)
        decoded = [json.loads(line) for line in text.splitlines()]
        assert decoded[0]["kind"] == "dispatch_start"
        assert decoded[0]["size"] == 12.5
        assert decoded[1]["detail"] == "crash"
        rebuilt = tuple(SimEvent(**d) for d in decoded)
        assert rebuilt == events

    def test_empty_stream_serializes_empty(self):
        assert events_to_jsonl(()) == ""


def test_kind_vocabulary_is_closed():
    assert EVENT_KINDS == {
        "dispatch_start", "dispatch_end", "link_hop", "comp_start", "comp_end",
        "fault", "recovery_decision", "round_boundary",
        "engine_fallback", "cell_quarantined",
        "job_arrival", "job_start", "job_done",
        "worker_excluded", "job_failed", "job_resubmitted",
    }
