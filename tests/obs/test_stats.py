"""Unit tests for the sweep-level stats collector."""

import json

import pytest

from repro.obs import SweepStats
from repro.obs.stats import ENGINES, CellTiming


class TestRoutingCounters:
    def test_counts_cells_and_runs(self):
        stats = SweepStats()
        stats.count_routing("static-batch", cells=10, runs_per_cell=3)
        stats.count_routing("dynbatch", cells=4, runs_per_cell=3)
        stats.count_routing("scalar", cells=2, runs_per_cell=3)
        assert stats.cells == {"static-batch": 10, "dynbatch": 4, "scalar": 2}
        assert stats.runs == {"static-batch": 30, "dynbatch": 12, "scalar": 6}
        assert stats.total_cells == 16
        assert stats.total_runs == 48

    def test_accumulates_across_sweeps(self):
        stats = SweepStats()
        stats.count_routing("scalar", cells=5, runs_per_cell=2)
        stats.count_routing("scalar", cells=5, runs_per_cell=2)
        assert stats.cells["scalar"] == 10
        assert stats.runs["scalar"] == 20

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine family"):
            SweepStats().count_routing("gpu", cells=1, runs_per_cell=1)


class TestTimings:
    def test_slowest_cells_ordering(self):
        stats = SweepStats()
        for i, wall in enumerate([0.01, 0.5, 0.1, 0.3]):
            stats.time_cell("RUMR", i, 0, "dynbatch", 5, wall)
        slow = stats.slowest_cells(2)
        assert [c.wall_s for c in slow] == [0.5, 0.3]
        assert all(isinstance(c, CellTiming) for c in slow)

    def test_slowest_handles_short_lists(self):
        stats = SweepStats()
        stats.time_cell("UMR", 0, 0, "static-batch", 3, 0.02)
        assert len(stats.slowest_cells(5)) == 1
        assert SweepStats().slowest_cells(5) == []


class TestReporting:
    def make_stats(self):
        stats = SweepStats()
        stats.count_routing("static-batch", cells=8, runs_per_cell=5)
        stats.count_routing("scalar", cells=2, runs_per_cell=5)
        stats.time_cell("UMR", 0, 1, "static-batch", 5, 0.004)
        stats.lockstep_wall_s = 0.123
        stats.total_wall_s = 1.5
        stats.cache_hits = 1
        stats.cache_misses = 2
        return stats

    def test_summary_mentions_everything(self):
        text = self.make_stats().summary()
        assert "50 simulations in 10 cells" in text
        assert "static-batch" in text and "scalar" in text and "dynbatch" in text
        assert "lockstep pass wall: 0.123s" in text
        assert "cache: 1 hit(s), 2 miss(es)" in text
        assert "UMR" in text

    def test_summary_survives_empty_collector(self):
        text = SweepStats().summary()
        assert "0 simulations" in text

    def test_as_dict_json_round_trip(self):
        snapshot = self.make_stats().as_dict()
        decoded = json.loads(json.dumps(snapshot))
        assert decoded["cells"]["static-batch"] == 8
        assert decoded["runs"]["scalar"] == 10
        assert decoded["cache_hits"] == 1
        assert decoded["cell_timings"][0]["algorithm"] == "UMR"
        assert set(decoded["cells"]) == set(ENGINES)
