#!/usr/bin/env python
"""Benchmark the sweep fast path against the scalar path.

Times the static-algorithm portion of a preset grid through both engines
(``run_sweep(batch_static=True)`` vs ``batch_static=False``), plus the
full paper algorithm list on each path for context, and writes the
numbers to a JSON file (default ``BENCH_sweep.json`` in the repository
root) so the perf trajectory is tracked across PRs.

The equivalence contract is asserted while benchmarking: at ``error = 0``
the two paths must agree bit-for-bit for every algorithm, and dynamic
algorithms must agree bit-for-bit at every error level (their seeds and
engine are identical on both paths).

Usage::

    PYTHONPATH=src python scripts/bench_sweep.py [--preset smoke]
        [--repeats 3] [--out BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.registry import is_static_algorithm  # noqa: E402
from repro.experiments.config import PAPER_ALGORITHMS, preset_grid  # noqa: E402
from repro.experiments.runner import run_sweep  # noqa: E402


def _time_sweep(grid, algorithms, batch_static: bool, repeats: int):
    """Best-of-``repeats`` wall time and the (last) results."""
    best = float("inf")
    results = None
    for _ in range(repeats):
        start = time.perf_counter()
        results = run_sweep(grid, algorithms=algorithms, batch_static=batch_static)
        best = min(best, time.perf_counter() - start)
    return best, results


def bench(preset: str = "smoke", repeats: int = 3) -> dict:
    """Run the benchmark and return the report dict."""
    if repeats < 1:
        raise ValueError(f"--repeats must be >= 1, got {repeats}")
    grid = preset_grid(preset)
    static_algos = tuple(a for a in PAPER_ALGORITHMS if is_static_algorithm(a))
    dynamic_algos = tuple(a for a in PAPER_ALGORITHMS if not is_static_algorithm(a))

    # Warm the (lru-cached) plan solvers so both paths are measured on
    # solver-warm caches — the seed scalar path enjoyed the same caching.
    run_sweep(grid, algorithms=static_algos)

    static_runs = grid.num_simulations(len(static_algos))
    scalar_wall, scalar_res = _time_sweep(grid, static_algos, False, repeats)
    batch_wall, batch_res = _time_sweep(grid, static_algos, True, repeats)

    equal_at_zero = all(
        np.array_equal(
            batch_res.makespans[a][:, 0, :], scalar_res.makespans[a][:, 0, :]
        )
        for a in static_algos
        if grid.errors[0] == 0.0
    )

    full_runs = grid.num_simulations(len(PAPER_ALGORITHMS))
    full_scalar_wall, _ = _time_sweep(grid, PAPER_ALGORITHMS, False, repeats)
    full_batch_wall, _ = _time_sweep(grid, PAPER_ALGORITHMS, True, repeats)

    return {
        "preset": preset,
        "repeats": repeats,
        "static_algorithms": list(static_algos),
        "dynamic_algorithms": list(dynamic_algos),
        "static_portion": {
            "num_simulations": static_runs,
            "scalar_wall_s": round(scalar_wall, 6),
            "batched_wall_s": round(batch_wall, 6),
            "scalar_us_per_run": round(scalar_wall / static_runs * 1e6, 3),
            "batched_us_per_run": round(batch_wall / static_runs * 1e6, 3),
            "speedup": round(scalar_wall / batch_wall, 2),
            "equal_at_zero_error": bool(equal_at_zero),
        },
        "full_sweep": {
            "num_simulations": full_runs,
            "scalar_wall_s": round(full_scalar_wall, 6),
            "batched_wall_s": round(full_batch_wall, 6),
            "scalar_us_per_run": round(full_scalar_wall / full_runs * 1e6, 3),
            "batched_us_per_run": round(full_batch_wall / full_runs * 1e6, 3),
            "speedup": round(full_scalar_wall / full_batch_wall, 2),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="smoke", help="grid preset (default: smoke)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "--out",
        default=str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_sweep.json"),
        help="output JSON path (default: BENCH_sweep.json in the repo root)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the static-portion speedup falls below this",
    )
    args = parser.parse_args(argv)

    report = bench(args.preset, args.repeats)
    pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    sp = report["static_portion"]
    print(
        f"static portion ({len(report['static_algorithms'])} algos, "
        f"{sp['num_simulations']} runs): scalar {sp['scalar_wall_s']:.3f}s "
        f"({sp['scalar_us_per_run']:.0f} us/run) -> batched "
        f"{sp['batched_wall_s']:.3f}s ({sp['batched_us_per_run']:.0f} us/run), "
        f"{sp['speedup']:.1f}x"
    )
    fs = report["full_sweep"]
    print(
        f"full sweep ({len(PAPER_ALGORITHMS)} algos, {fs['num_simulations']} runs): "
        f"scalar {fs['scalar_wall_s']:.3f}s -> batched {fs['batched_wall_s']:.3f}s, "
        f"{fs['speedup']:.1f}x"
    )
    print(f"wrote {args.out}")

    if not sp["equal_at_zero_error"]:
        print("ERROR: batched path diverges from scalar path at error=0", file=sys.stderr)
        return 1
    if args.min_speedup is not None and sp["speedup"] < args.min_speedup:
        print(
            f"ERROR: static-portion speedup {sp['speedup']}x < "
            f"required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
