#!/usr/bin/env python
"""Benchmark the sweep fast paths against the scalar path.

Times four slices of a preset grid through both engines
(``run_sweep(batch_static=True)`` vs ``batch_static=False``): the
static-algorithm portion (whole-grid vectorized plan replay), the
batch-dynamic portion (lockstep engine for every in-tree dynamic
scheduler), the full paper algorithm list, and the same full list on one
*fault* grid per fault kind — crash, pause, slowdown, link-spike — each
realized as a vectorized :class:`~repro.errors.faults.FaultPlane` inside
the batch engines, and writes the numbers to a JSON file (default
``BENCH_sweep.json`` in the repository root) so the perf trajectory is
tracked across PRs.

The equivalence contract is asserted while benchmarking: at ``error = 0``
both fast paths must agree with the scalar engine bit-for-bit for every
algorithm.  (At ``error > 0`` the batch engines are distributionally
identical but not bitwise — see ``repro.sim.batch`` and
``repro.sim.dynbatch``.)

The previous report (``--baseline``, default: the ``--out`` path before
it is overwritten) doubles as a perf baseline: the new full-sweep batched
wall time is compared against it and the ratio recorded as
``overhead_vs_baseline``.  ``--max-overhead 0.05`` turns that into a
gate — the guard for the ``repro.obs`` tracing hooks, which promise to be
zero-cost when disabled: a sweep never traces, so any wall-time growth
beyond noise means the hooks leaked into the hot paths.

Usage::

    PYTHONPATH=src python scripts/bench_sweep.py [--preset smoke]
        [--repeats 3] [--out BENCH_sweep.json] [--max-overhead 0.05]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.registry import (  # noqa: E402
    is_batch_dynamic_algorithm,
    is_static_algorithm,
)
from repro.experiments.config import PAPER_ALGORITHMS, preset_grid  # noqa: E402
from repro.experiments.runner import run_sweep  # noqa: E402


def _load_baseline(path: str | pathlib.Path) -> dict | None:
    """The previous report at ``path``, or None if absent/unreadable."""
    path = pathlib.Path(path)
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return None


def _time_sweep(grid, algorithms, batch_static: bool, repeats: int):
    """Best-of-``repeats`` wall time and the (last) results."""
    best = float("inf")
    results = None
    for _ in range(repeats):
        start = time.perf_counter()
        results = run_sweep(grid, algorithms=algorithms, batch_static=batch_static)
        best = min(best, time.perf_counter() - start)
    return best, results


#: The fault scenario the ``fault_portion`` section benchmarks: every
#: worker may crash inside the measured window, so both engines realize
#: and replay per-repetition crash schedules.
FAULT_SPEC = "crash:p=0.5,tmax=100"

#: One scenario per fault kind for the ``fault_portions`` section, so a
#: regression in any single vectorized transform (crash loss rule, pause
#: stretch, slowdown stretch, per-dispatch link spikes) shows up as its
#: own speedup number instead of hiding in a crash-only aggregate.
FAULT_SPECS = {
    "crash": FAULT_SPEC,
    "pause": "pause:p=0.5,tmax=100,dur=30",
    "slowdown": "slow:p=0.5,tmax=100,factor=2",
    "link-spike": "spike:p=0.2,delay=5",
}


def bench(preset: str = "smoke", repeats: int = 3) -> dict:
    """Run the benchmark and return the report dict."""
    if repeats < 1:
        raise ValueError(f"--repeats must be >= 1, got {repeats}")
    grid = preset_grid(preset)
    static_algos = tuple(a for a in PAPER_ALGORITHMS if is_static_algorithm(a))
    dynamic_algos = tuple(a for a in PAPER_ALGORITHMS if not is_static_algorithm(a))
    dyn_batch_algos = tuple(a for a in dynamic_algos if is_batch_dynamic_algorithm(a))

    # Warm the (lru-cached) plan solvers so both paths are measured on
    # solver-warm caches — the seed scalar path enjoyed the same caching.
    run_sweep(grid, algorithms=PAPER_ALGORITHMS)

    def _portion(algos, g=grid):
        runs = g.num_simulations(len(algos))
        scalar_wall, scalar_res = _time_sweep(g, algos, False, repeats)
        batch_wall, batch_res = _time_sweep(g, algos, True, repeats)
        equal_at_zero = all(
            np.array_equal(
                batch_res.makespans[a][:, 0, :], scalar_res.makespans[a][:, 0, :]
            )
            for a in algos
            if g.errors[0] == 0.0
        )
        return {
            "num_simulations": runs,
            "scalar_wall_s": round(scalar_wall, 6),
            "batched_wall_s": round(batch_wall, 6),
            "scalar_us_per_run": round(scalar_wall / runs * 1e6, 3),
            "batched_us_per_run": round(batch_wall / runs * 1e6, 3),
            "speedup": round(scalar_wall / batch_wall, 2),
            "equal_at_zero_error": bool(equal_at_zero),
        }

    static_portion = _portion(static_algos)
    dynamic_portion = _portion(dyn_batch_algos)
    full_sweep = _portion(PAPER_ALGORITHMS)
    fault_portions = {}
    for kind, spec in FAULT_SPECS.items():
        portion = _portion(PAPER_ALGORITHMS, grid.restrict(fault=spec))
        portion["fault"] = spec
        fault_portions[kind] = portion

    return {
        "preset": preset,
        "repeats": repeats,
        "static_algorithms": list(static_algos),
        "dynamic_algorithms": list(dynamic_algos),
        "batch_dynamic_algorithms": list(dyn_batch_algos),
        "static_portion": static_portion,
        "dynamic_portion": dynamic_portion,
        # Kept as the crash scenario for baseline continuity; the
        # per-kind breakdown lives in ``fault_portions``.
        "fault_portion": fault_portions["crash"],
        "fault_portions": fault_portions,
        "full_sweep": full_sweep,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="bench", help="grid preset (default: bench)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "--out",
        default=str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_sweep.json"),
        help="output JSON path (default: BENCH_sweep.json in the repo root)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the static- or dynamic-portion speedup "
        "falls below this",
    )
    parser.add_argument(
        "--min-fault-speedup",
        type=float,
        default=None,
        help="exit non-zero if any per-kind fault-portion speedup falls "
        "below this (fault schedules are realized and replayed as "
        "vectorized fault planes inside the batch engines)",
    )
    parser.add_argument(
        "--min-full-speedup",
        type=float,
        default=None,
        help="exit non-zero if the full-sweep speedup falls below this",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="previous report to compare against (default: the --out path "
        "before it is overwritten)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=None,
        help="exit non-zero if the full-sweep batched wall time exceeds "
        "the baseline's by more than this fraction (tracing-disabled "
        "overhead guard; e.g. 0.05 for 5%%)",
    )
    args = parser.parse_args(argv)

    baseline = _load_baseline(args.baseline or args.out)
    report = bench(args.preset, args.repeats)
    overhead = None
    if baseline is not None and baseline.get("preset") == args.preset:
        base_wall = baseline.get("full_sweep", {}).get("batched_wall_s")
        if base_wall:
            overhead = report["full_sweep"]["batched_wall_s"] / base_wall - 1.0
            report["full_sweep"]["baseline_batched_wall_s"] = base_wall
            report["full_sweep"]["overhead_vs_baseline"] = round(overhead, 4)
    pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    sp = report["static_portion"]
    print(
        f"static portion ({len(report['static_algorithms'])} algos, "
        f"{sp['num_simulations']} runs): scalar {sp['scalar_wall_s']:.3f}s "
        f"({sp['scalar_us_per_run']:.0f} us/run) -> batched "
        f"{sp['batched_wall_s']:.3f}s ({sp['batched_us_per_run']:.0f} us/run), "
        f"{sp['speedup']:.1f}x"
    )
    dp = report["dynamic_portion"]
    print(
        f"dynamic portion ({len(report['batch_dynamic_algorithms'])} algos, "
        f"{dp['num_simulations']} runs): scalar {dp['scalar_wall_s']:.3f}s "
        f"({dp['scalar_us_per_run']:.0f} us/run) -> batched "
        f"{dp['batched_wall_s']:.3f}s ({dp['batched_us_per_run']:.0f} us/run), "
        f"{dp['speedup']:.1f}x"
    )
    for kind, fp in report["fault_portions"].items():
        print(
            f"fault portion [{kind}] ({fp['fault']}, {len(PAPER_ALGORITHMS)} "
            f"algos, {fp['num_simulations']} runs): scalar "
            f"{fp['scalar_wall_s']:.3f}s -> batched {fp['batched_wall_s']:.3f}s, "
            f"{fp['speedup']:.1f}x"
        )
    fs = report["full_sweep"]
    print(
        f"full sweep ({len(PAPER_ALGORITHMS)} algos, {fs['num_simulations']} runs): "
        f"scalar {fs['scalar_wall_s']:.3f}s -> batched {fs['batched_wall_s']:.3f}s, "
        f"{fs['speedup']:.1f}x"
    )
    if overhead is not None:
        print(
            f"vs baseline: batched full sweep "
            f"{fs['baseline_batched_wall_s']:.3f}s -> {fs['batched_wall_s']:.3f}s "
            f"({overhead:+.1%})"
        )
    print(f"wrote {args.out}")

    failed = False
    if args.max_overhead is not None:
        if overhead is None:
            print(
                "NOTE: --max-overhead given but no baseline report for "
                f"preset '{args.preset}' found; overhead gate skipped",
                file=sys.stderr,
            )
        elif overhead > args.max_overhead:
            print(
                f"ERROR: full-sweep batched wall time regressed "
                f"{overhead:+.1%} vs baseline (allowed {args.max_overhead:.0%}) "
                "-- the disabled-tracing hooks must stay off the hot paths",
                file=sys.stderr,
            )
            failed = True
    portions = [("static", sp), ("dynamic", dp), ("full-sweep", fs)] + [
        (f"fault[{kind}]", fp) for kind, fp in report["fault_portions"].items()
    ]
    for label, portion in portions:
        if not portion["equal_at_zero_error"]:
            print(
                f"ERROR: batched {label} path diverges from scalar path at error=0",
                file=sys.stderr,
            )
            failed = True
    for label, portion in (("static", sp), ("dynamic", dp)):
        if args.min_speedup is not None and portion["speedup"] < args.min_speedup:
            print(
                f"ERROR: {label}-portion speedup {portion['speedup']}x < "
                f"required {args.min_speedup}x",
                file=sys.stderr,
            )
            failed = True
    if args.min_fault_speedup is not None:
        for kind, fp in report["fault_portions"].items():
            if fp["speedup"] < args.min_fault_speedup:
                print(
                    f"ERROR: fault-portion [{kind}] speedup {fp['speedup']}x < "
                    f"required {args.min_fault_speedup}x",
                    file=sys.stderr,
                )
                failed = True
    if args.min_full_speedup is not None and fs["speedup"] < args.min_full_speedup:
        print(
            f"ERROR: full-sweep speedup {fs['speedup']}x < "
            f"required {args.min_full_speedup}x",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
