#!/usr/bin/env python
"""Attribute batched fault-sweep time: fault transforms vs kernel steps.

Runs one fault grid per kind — crash, pause, slowdown, link-spike
(plus the fault-free baseline) — through the batch engines with a
:class:`~repro.obs.SweepStats` collector attached, and tabulates where
the batched wall time goes:

* the **fault-attributed** portion, split by bucket — plane realization
  (``sample``), scalar replays of deferred rows (``defer``), and the
  per-dispatch timeline transforms (``crash`` / ``pause`` / ``slow`` /
  ``spike``);
* the **remainder** — kernel decides, dispatch arithmetic, observe/
  apply bookkeeping — obtained by subtraction from the batch-pass wall
  time (static grid pass + lockstep pass).

This is the first stop when a fault-portion speedup in
``BENCH_sweep.json`` regresses: if the fault share grew, the transforms
(or the sampling, or a deferral storm — check ``rows deferred``) are to
blame; if the remainder grew, the regression is in the kernels or the
engine core and faults are innocent.

Usage::

    PYTHONPATH=src python scripts/profile_fault_pass.py
        [--preset smoke] [--repeats 1]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.config import PAPER_ALGORITHMS, preset_grid  # noqa: E402
from repro.experiments.runner import run_sweep  # noqa: E402
from repro.obs import SweepStats  # noqa: E402

#: One scenario per fault kind, matching ``scripts/bench_sweep.py``'s
#: ``fault_portions`` section so the two reports line up.
FAULT_SPECS = {
    "none": "none",
    "crash": "crash:p=0.5,tmax=100",
    "pause": "pause:p=0.5,tmax=100,dur=30",
    "slowdown": "slow:p=0.5,tmax=100,factor=2",
    "link-spike": "spike:p=0.2,delay=5",
}


def profile(preset: str = "smoke", repeats: int = 1) -> list[dict]:
    """One row per fault kind: batch-pass wall vs fault-attributed time."""
    grid = preset_grid(preset)
    # Warm the lru-cached plan solvers so the first row is not billed
    # for one-time solver work the others skip.
    run_sweep(grid, algorithms=PAPER_ALGORITHMS)

    rows = []
    for kind, spec in FAULT_SPECS.items():
        g = grid if spec == "none" else grid.restrict(fault=spec)
        best = None
        for _ in range(repeats):
            stats = SweepStats()
            run_sweep(g, algorithms=PAPER_ALGORITHMS, stats=stats)
            pass_wall = stats.staticgrid_wall_s + stats.lockstep_wall_s
            if best is None or pass_wall < best["pass_wall_s"]:
                best = {
                    "kind": kind,
                    "fault": spec,
                    "pass_wall_s": pass_wall,
                    "fault_wall_s": dict(stats.fault_wall_s),
                    "rows_deferred_scalar": stats.rows_deferred_scalar,
                }
        rows.append(best)
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="smoke", help="grid preset (default: smoke)")
    parser.add_argument("--repeats", type=int, default=1, help="best-of repeats")
    args = parser.parse_args(argv)

    rows = profile(args.preset, args.repeats)
    buckets = list(rows[0]["fault_wall_s"])
    header = (
        f"{'kind':<10} {'batch pass':>10} {'fault':>8} {'share':>6} "
        + " ".join(f"{b:>8}" for b in buckets)
        + f" {'deferred':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        fault_total = sum(row["fault_wall_s"].values())
        share = fault_total / row["pass_wall_s"] if row["pass_wall_s"] else 0.0
        print(
            f"{row['kind']:<10} {row['pass_wall_s'] * 1e3:>8.1f}ms "
            f"{fault_total * 1e3:>6.1f}ms {share:>6.1%} "
            + " ".join(
                f"{row['fault_wall_s'][b] * 1e3:>6.1f}ms" for b in buckets
            )
            + f" {row['rows_deferred_scalar']:>8d}"
        )
    print(
        "\nbatch pass = static grid pass + lockstep pass wall; fault = sum "
        "of the bucket columns;\nremainder (kernel decides, dispatch "
        "arithmetic) = batch pass - fault."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
