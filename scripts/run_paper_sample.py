#!/usr/bin/env python
"""Generate the paper-sample fidelity artifacts (EXPERIMENTS.md).

Runs a uniform random sample of the *full* Table-1 cross product at the
paper's exact error axis (0 … 0.5 step 0.02) and renders Table 2, Table 3
and the Figure 4(a) series from it.  Usage::

    python scripts/run_paper_sample.py [--platforms 100] [--repetitions 10]
                                       [--results results]
"""

from __future__ import annotations

import argparse
import pathlib

from repro.experiments.cache import cached_sweep
from repro.experiments.config import PAPER_ALGORITHMS, paper_sample_grid
from repro.experiments.figures import fig4a
from repro.experiments.report import render_figure, render_table
from repro.experiments.runner import eta_progress
from repro.experiments.tables import table2, table3


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--platforms", type=int, default=100)
    parser.add_argument("--repetitions", type=int, default=10)
    parser.add_argument("--results", default="results")
    args = parser.parse_args()

    grid = paper_sample_grid(platforms=args.platforms, repetitions=args.repetitions)
    total = grid.num_simulations(len(PAPER_ALGORITHMS))
    print(f"paper-sample sweep: {grid.num_platforms} platforms x "
          f"{len(grid.errors)} errors x {grid.repetitions} reps x "
          f"{len(PAPER_ALGORITHMS)} algorithms = {total} simulations")
    results = cached_sweep(grid, PAPER_ALGORITHMS, args.results, progress=eta_progress())

    out = pathlib.Path(args.results)
    out.mkdir(parents=True, exist_ok=True)
    (out / "table2-paper-sample.txt").write_text(render_table(table2(results)))
    (out / "table3-paper-sample.txt").write_text(render_table(table3(results)))
    (out / "fig4a-paper-sample.txt").write_text(render_figure(fig4a(results)))
    for name in ("table2", "table3", "fig4a"):
        print(f"wrote {out}/{name}-paper-sample.txt")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
